//! Pipeline configuration.

use metaprep_dist::FaultPlan;
use metaprep_norm::SketchParams;
use std::fmt;
use std::path::PathBuf;

/// Errors surfaced by pipeline validation or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The configuration is internally inconsistent.
    InvalidConfig(String),
    /// The input violates a pipeline limit (e.g. too many fragments).
    InvalidInput(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::InvalidConfig(s) => write!(f, "invalid configuration: {s}"),
            PipelineError::InvalidInput(s) => write!(f, "invalid input: {s}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Full configuration of a METAPREP run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// k-mer length (`1..=63`; the paper uses 27 by default and 63 for the
    /// large-k experiments). `k <= 32` uses 64-bit tuples, larger k 128-bit.
    pub k: usize,
    /// m-mer prefix length for the index histograms (`m <= min(k, 16)`;
    /// the paper uses 10; we default to 8 which gives 64Ki bins — plenty
    /// for the scaled datasets while keeping `FASTQPart` small).
    pub m: usize,
    /// Number of I/O passes `S` over the input (§3.1: more passes, less
    /// memory per task).
    pub passes: usize,
    /// True when `passes` was set explicitly (builder/CLI) rather than
    /// left at the default. Arbitrates against [`Self::memory_budget`]:
    /// an explicit pass count always wins, but a budget it cannot meet is
    /// a configuration error instead of a silent overshoot.
    pub passes_explicit: bool,
    /// Per-task memory budget in bytes for the adaptive pass planner.
    /// When set (and `passes` was not given explicitly) the pipeline
    /// computes the smallest pass count whose §3.7 modeled footprint fits,
    /// instead of trusting `passes`.
    pub memory_budget: Option<u64>,
    /// Presolve drop threshold: k-mers whose sketch-estimated occurrence
    /// count *exceeds* this value are dropped inside KmerGen, before any
    /// tuple is materialized or shipped. `None` disables the presolve
    /// tier. The estimate never under-counts, so every k-mer truly above
    /// the threshold is dropped; rare sketch collisions can only drop
    /// extra high-side k-mers, never resurrect one.
    pub presolve_threshold: Option<u32>,
    /// Shape and seed of the presolve count-min sketch built during
    /// IndexCreate (used only when `presolve_threshold` is set).
    pub sketch: SketchParams,
    /// Number of simulated MPI tasks `P`.
    pub tasks: usize,
    /// Threads per task `T`.
    pub threads: usize,
    /// Number of logical FASTQ chunks `C`; 0 means `4 * tasks * threads`.
    pub chunks: usize,
    /// k-mer frequency filter: only k-mers whose occurrence count lies in
    /// `lo..=hi` generate read-graph edges (paper §4.4; `KF < 30` is
    /// `(1, 29)`, `10 <= KF < 30` is `(10, 29)`).
    pub kf_filter: Option<(u32, u32)>,
    /// LocalCC-Opt (§3.5.1): on passes after the first, enumerate
    /// `(k-mer, component id)` instead of `(k-mer, read id)` to improve
    /// locality in the component array.
    pub cc_opt: bool,
    /// Use the 4-lane batched k-mer generator (§3.2.1) instead of the
    /// scalar rolling generator.
    pub use_x4_kmergen: bool,
    /// Send component arrays in sparse `(vertex, root)` form during the
    /// MergeCC rounds — the communication-contraction direction the paper's
    /// §5 cites (Iverson et al.). Reduces Merge-Comm bytes when tasks touch
    /// only a slice of the read set; identical final components.
    pub merge_sparse: bool,
    /// Probe/read window in bytes for the streaming file IndexCreate
    /// (0 = auto, `metaprep_io::DEFAULT_INDEX_WINDOW`). Indexing memory per
    /// thread is O(window + chunk bytes); the window only needs to span a
    /// few FASTQ records.
    pub index_window: usize,
    /// Radix digit width in bits for the fused LocalSort (`1..=16`; the
    /// paper uses 8 — 256 bucket counters stay L1-resident; the ablation
    /// benches sweep 8/11/16). Identical final output at any width.
    pub sort_digit_bits: u32,
    /// Deterministic fault-injection plan applied to every cluster
    /// message and to the chosen crash boundaries (`None` = fault-free).
    /// Crashes in the plan require [`PipelineConfig::checkpoint_dir`].
    pub fault_plan: Option<FaultPlan>,
    /// Directory for pass-level checkpoints (`rank{r}.ckpt`). When set,
    /// each task persists its restartable state at every pass and merge
    /// boundary; a supervised restart replays from the last one.
    pub checkpoint_dir: Option<PathBuf>,
    /// Override the fault plan's delivery retry budget (`None` = keep the
    /// plan's own [`metaprep_dist::DeliveryPolicy`] value).
    pub max_retries: Option<u32>,
    /// Stall watchdog threshold in milliseconds (`None` = the cluster
    /// default; `Some(0)` is rejected by validation).
    pub watchdog_timeout_ms: Option<u64>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            k: 27,
            m: 8,
            passes: 1,
            passes_explicit: false,
            memory_budget: None,
            presolve_threshold: None,
            sketch: SketchParams::default(),
            tasks: 1,
            threads: 1,
            chunks: 0,
            kf_filter: None,
            cc_opt: true,
            use_x4_kmergen: false,
            merge_sparse: false,
            index_window: 0,
            sort_digit_bits: 8,
            fault_plan: None,
            checkpoint_dir: None,
            max_retries: None,
            watchdog_timeout_ms: None,
        }
    }
}

impl PipelineConfig {
    /// Start building a configuration from the defaults.
    pub fn builder() -> PipelineConfigBuilder {
        PipelineConfigBuilder {
            cfg: Self::default(),
        }
    }

    /// Effective chunk count.
    pub fn effective_chunks(&self) -> usize {
        if self.chunks == 0 {
            4 * self.tasks * self.threads
        } else {
            self.chunks
        }
    }

    /// Validate invariants; called by [`crate::Pipeline::new`].
    pub fn validate(&self) -> Result<(), PipelineError> {
        let err = |s: String| Err(PipelineError::InvalidConfig(s));
        if self.k < 1 || self.k > 63 {
            return err(format!("k = {} not in 1..=63", self.k));
        }
        if self.m < 1 || self.m > self.k.min(16) {
            return err(format!("m = {} not in 1..=min(k, 16)", self.m));
        }
        if self.passes < 1 {
            return err("passes must be >= 1".into());
        }
        if self.tasks < 1 {
            return err("tasks must be >= 1".into());
        }
        if self.threads < 1 {
            return err("threads must be >= 1".into());
        }
        if let Some((lo, hi)) = self.kf_filter {
            if lo > hi || lo == 0 {
                return err(format!("kf_filter ({lo}, {hi}) must satisfy 1 <= lo <= hi"));
            }
        }
        if !(1..=16).contains(&self.sort_digit_bits) {
            return err(format!(
                "sort_digit_bits = {} not in 1..=16",
                self.sort_digit_bits
            ));
        }
        if let Some(plan) = &self.fault_plan {
            if !plan.crashes.is_empty() && self.checkpoint_dir.is_none() {
                return err("fault plan injects crashes but no checkpoint_dir is set \
                     (restart needs somewhere to replay from)"
                    .into());
            }
            for c in &plan.crashes {
                if c.rank as usize >= self.tasks {
                    return err(format!(
                        "fault plan crashes rank {} but the run has only {} tasks",
                        c.rank, self.tasks
                    ));
                }
            }
        }
        if self.watchdog_timeout_ms == Some(0) {
            return err("watchdog_timeout_ms must be nonzero".into());
        }
        if self.memory_budget == Some(0) {
            return err("memory_budget must be nonzero".into());
        }
        if self.presolve_threshold == Some(0) {
            return err(
                "presolve_threshold must be >= 1 (a zero threshold drops every k-mer)".into(),
            );
        }
        if self.presolve_threshold.is_some() && (self.sketch.width < 16 || self.sketch.depth == 0) {
            return err(format!(
                "presolve sketch must be at least 16 x 1 counters, got {} x {}",
                self.sketch.width, self.sketch.depth
            ));
        }
        Ok(())
    }
}

/// Builder for [`PipelineConfig`].
#[derive(Clone, Debug)]
pub struct PipelineConfigBuilder {
    cfg: PipelineConfig,
}

impl PipelineConfigBuilder {
    /// Set the k-mer length.
    pub fn k(mut self, k: usize) -> Self {
        self.cfg.k = k;
        self
    }

    /// Set the m-mer prefix length.
    pub fn m(mut self, m: usize) -> Self {
        self.cfg.m = m;
        self
    }

    /// Set the number of I/O passes *explicitly* — the adaptive planner
    /// then never overrides it (a [`PipelineConfig::memory_budget`] it
    /// cannot meet becomes a configuration error at run time).
    pub fn passes(mut self, s: usize) -> Self {
        self.cfg.passes = s;
        self.cfg.passes_explicit = true;
        self
    }

    /// Set the per-task memory budget in bytes for the adaptive planner.
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.cfg.memory_budget = Some(bytes);
        self
    }

    /// Enable the presolve tier: drop k-mers whose estimated occurrence
    /// count exceeds `threshold` before tuples are generated.
    pub fn presolve_threshold(mut self, threshold: u32) -> Self {
        self.cfg.presolve_threshold = Some(threshold);
        self
    }

    /// Shape the presolve count-min sketch.
    pub fn sketch(mut self, params: SketchParams) -> Self {
        self.cfg.sketch = params;
        self
    }

    /// Set the number of simulated tasks.
    pub fn tasks(mut self, p: usize) -> Self {
        self.cfg.tasks = p;
        self
    }

    /// Set threads per task.
    pub fn threads(mut self, t: usize) -> Self {
        self.cfg.threads = t;
        self
    }

    /// Set the logical chunk count (0 = auto).
    pub fn chunks(mut self, c: usize) -> Self {
        self.cfg.chunks = c;
        self
    }

    /// Restrict read-graph edges to k-mers with frequency in `lo..=hi`.
    pub fn kf_filter(mut self, lo: u32, hi: u32) -> Self {
        self.cfg.kf_filter = Some((lo, hi));
        self
    }

    /// Enable/disable LocalCC-Opt.
    pub fn cc_opt(mut self, on: bool) -> Self {
        self.cfg.cc_opt = on;
        self
    }

    /// Enable/disable 4-lane KmerGen.
    pub fn x4_kmergen(mut self, on: bool) -> Self {
        self.cfg.use_x4_kmergen = on;
        self
    }

    /// Enable/disable sparse Merge-Comm payloads.
    pub fn merge_sparse(mut self, on: bool) -> Self {
        self.cfg.merge_sparse = on;
        self
    }

    /// Set the streaming IndexCreate probe/read window in bytes (0 = auto).
    pub fn index_window(mut self, bytes: usize) -> Self {
        self.cfg.index_window = bytes;
        self
    }

    /// Set the fused LocalSort radix digit width in bits (`1..=16`).
    pub fn sort_digit_bits(mut self, bits: u32) -> Self {
        self.cfg.sort_digit_bits = bits;
        self
    }

    /// Inject faults according to `plan` (see [`FaultPlan`]).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.cfg.fault_plan = Some(plan);
        self
    }

    /// Persist pass-level checkpoints under `dir`.
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cfg.checkpoint_dir = Some(dir.into());
        self
    }

    /// Override the delivery retry budget of the fault plan.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.cfg.max_retries = Some(n);
        self
    }

    /// Set the stall watchdog threshold in milliseconds (nonzero).
    pub fn watchdog_timeout_ms(mut self, ms: u64) -> Self {
        self.cfg.watchdog_timeout_ms = Some(ms);
        self
    }

    /// Finish building.
    pub fn build(self) -> PipelineConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        assert!(PipelineConfig::default().validate().is_ok());
    }

    #[test]
    fn builder_sets_fields() {
        let c = PipelineConfig::builder()
            .k(63)
            .m(10)
            .passes(4)
            .tasks(8)
            .threads(3)
            .chunks(96)
            .kf_filter(10, 29)
            .cc_opt(false)
            .x4_kmergen(true)
            .index_window(1 << 20)
            .sort_digit_bits(11)
            .build();
        assert_eq!(c.k, 63);
        assert_eq!(c.m, 10);
        assert_eq!(c.passes, 4);
        assert_eq!(c.tasks, 8);
        assert_eq!(c.threads, 3);
        assert_eq!(c.chunks, 96);
        assert_eq!(c.kf_filter, Some((10, 29)));
        assert!(!c.cc_opt);
        assert!(c.use_x4_kmergen);
        assert_eq!(c.index_window, 1 << 20);
        assert_eq!(c.sort_digit_bits, 11);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn effective_chunks_auto() {
        let c = PipelineConfig::builder().tasks(2).threads(3).build();
        assert_eq!(c.effective_chunks(), 24);
        let c = PipelineConfig::builder().chunks(7).build();
        assert_eq!(c.effective_chunks(), 7);
    }

    #[test]
    fn rejects_bad_k() {
        assert!(PipelineConfig::builder().k(0).build().validate().is_err());
        assert!(PipelineConfig::builder().k(64).build().validate().is_err());
        assert!(PipelineConfig::builder().k(63).build().validate().is_ok());
    }

    #[test]
    fn rejects_bad_m() {
        assert!(PipelineConfig::builder()
            .k(6)
            .m(7)
            .build()
            .validate()
            .is_err());
        assert!(PipelineConfig::builder().m(0).build().validate().is_err());
        assert!(PipelineConfig::builder()
            .k(27)
            .m(16)
            .build()
            .validate()
            .is_ok());
    }

    #[test]
    fn rejects_bad_filter() {
        assert!(PipelineConfig::builder()
            .kf_filter(5, 2)
            .build()
            .validate()
            .is_err());
        assert!(PipelineConfig::builder()
            .kf_filter(0, 5)
            .build()
            .validate()
            .is_err());
        assert!(PipelineConfig::builder()
            .kf_filter(1, 1)
            .build()
            .validate()
            .is_ok());
    }

    #[test]
    fn rejects_bad_sort_digit_bits() {
        for bits in [0u32, 17, 64] {
            assert!(PipelineConfig::builder()
                .sort_digit_bits(bits)
                .build()
                .validate()
                .is_err());
        }
        for bits in [1u32, 8, 16] {
            assert!(PipelineConfig::builder()
                .sort_digit_bits(bits)
                .build()
                .validate()
                .is_ok());
        }
    }

    #[test]
    fn fault_builder_sets_fields() {
        let plan = FaultPlan::new(7);
        let c = PipelineConfig::builder()
            .fault_plan(plan.clone())
            .checkpoint_dir("/tmp/ckpt")
            .max_retries(3)
            .watchdog_timeout_ms(250)
            .build();
        assert_eq!(c.fault_plan, Some(plan));
        assert_eq!(c.checkpoint_dir, Some(PathBuf::from("/tmp/ckpt")));
        assert_eq!(c.max_retries, Some(3));
        assert_eq!(c.watchdog_timeout_ms, Some(250));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn crashes_require_a_checkpoint_dir() {
        use metaprep_dist::Boundary;
        let plan = FaultPlan::new(1).with_crash(0, Boundary::Pass(0));
        assert!(PipelineConfig::builder()
            .fault_plan(plan.clone())
            .build()
            .validate()
            .is_err());
        assert!(PipelineConfig::builder()
            .fault_plan(plan)
            .checkpoint_dir("/tmp/ckpt")
            .build()
            .validate()
            .is_ok());
    }

    #[test]
    fn crash_rank_must_exist() {
        use metaprep_dist::Boundary;
        let plan = FaultPlan::new(1).with_crash(5, Boundary::Pass(0));
        assert!(PipelineConfig::builder()
            .tasks(2)
            .fault_plan(plan)
            .checkpoint_dir("/tmp/ckpt")
            .build()
            .validate()
            .is_err());
    }

    #[test]
    fn rejects_zero_watchdog() {
        assert!(PipelineConfig::builder()
            .watchdog_timeout_ms(0)
            .build()
            .validate()
            .is_err());
    }

    #[test]
    fn passes_builder_marks_explicit() {
        assert!(!PipelineConfig::default().passes_explicit);
        let c = PipelineConfig::builder().passes(2).build();
        assert!(c.passes_explicit);
        // A budget alone leaves passes implicit: the planner may override.
        let c = PipelineConfig::builder().memory_budget(1 << 30).build();
        assert!(!c.passes_explicit);
        assert_eq!(c.memory_budget, Some(1 << 30));
    }

    #[test]
    fn presolve_builder_and_validation() {
        let c = PipelineConfig::builder()
            .presolve_threshold(20)
            .sketch(SketchParams {
                width: 1 << 10,
                depth: 3,
                seed: 5,
            })
            .build();
        assert_eq!(c.presolve_threshold, Some(20));
        assert_eq!(c.sketch.depth, 3);
        assert!(c.validate().is_ok());
        assert!(PipelineConfig::builder()
            .presolve_threshold(0)
            .build()
            .validate()
            .is_err());
        assert!(PipelineConfig::builder()
            .presolve_threshold(5)
            .sketch(SketchParams {
                width: 4,
                depth: 0,
                seed: 0,
            })
            .build()
            .validate()
            .is_err());
    }

    #[test]
    fn rejects_zero_memory_budget() {
        assert!(PipelineConfig::builder()
            .memory_budget(0)
            .build()
            .validate()
            .is_err());
        assert!(PipelineConfig::builder()
            .memory_budget(1 << 20)
            .build()
            .validate()
            .is_ok());
    }

    #[test]
    fn rejects_zero_parallelism() {
        assert!(PipelineConfig::builder()
            .passes(0)
            .build()
            .validate()
            .is_err());
        assert!(PipelineConfig::builder()
            .tasks(0)
            .build()
            .validate()
            .is_err());
        assert!(PipelineConfig::builder()
            .threads(0)
            .build()
            .validate()
            .is_err());
    }
}
