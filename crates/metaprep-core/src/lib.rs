//! The METAPREP preprocessing pipeline (paper §3).
//!
//! Partitions a metagenomic read set into connected components of the
//! implicit *read graph* (reads sharing a canonical k-mer are connected) so
//! that each component can be assembled independently. The pipeline runs on
//! the simulated cluster of `metaprep-dist` with the exact step structure
//! of the paper:
//!
//! ```text
//! IndexCreate -> for each pass s:                       (multi-pass, §3.1)
//!                  KmerGen        (enumerate tuples,    §3.2)
//!                  KmerGen-Comm   (P-stage all-to-all,  §3.3)
//!                  LocalSort      (partition + radix,   §3.4)
//!                  LocalCC        (concurrent UF,       §3.5)
//!                -> MergeCC       (log P rounds,        §3.6)
//!                -> output partitioned FASTQ
//! ```
//!
//! Entry point: [`Pipeline::run_reads`]. Configuration: [`PipelineConfig`]
//! (k, m, passes, tasks, threads, k-mer frequency filter, LocalCC-Opt,
//! 4-lane KmerGen). Results carry component labels, per-task per-step
//! timings, communication volumes and both modeled and measured memory.

pub mod checkpoint;
pub mod config;
pub mod kmergen;
pub mod localcc;
pub mod memmodel;
pub mod output;
pub mod pipeline;
pub mod planner;
pub mod source;
pub mod timings;

pub use checkpoint::{plan_fingerprint, Checkpoint, CkptError, CkptPhase, PlanCheckpoint};
pub use config::{PipelineConfig, PipelineConfigBuilder, PipelineError};
pub use memmodel::MemoryReport;
pub use output::{
    partition_reads, partition_top_n, write_multi_partition, write_partitions, MultiPartition,
    PartitionedReads,
};
pub use pipeline::{Pipeline, PipelineResult};
pub use planner::{plan_passes, PassPlan, PlanInputs, MAX_PLANNED_PASSES};
pub use source::{ChunkSource, FileSource, MemorySource};
pub use timings::{Step, StepTimings, TaskTimings};
