//! Output partitioning (the tail of MergeCC, paper §3.6).
//!
//! The paper writes the reads of the largest component to one FASTQ file
//! and all remaining reads to another, because a giant component forms on
//! every dataset it examined. [`partition_reads`] does the split in memory;
//! [`write_partitions`] writes `lc.fastq` / `other.fastq`.

use metaprep_io::{write_fastq_path, ReadStore};
use std::io;
use std::path::Path;

/// The two output read sets.
#[derive(Clone, Debug)]
pub struct PartitionedReads {
    /// Reads whose fragment is in the largest component.
    pub lc: ReadStore,
    /// All other reads.
    pub other: ReadStore,
    /// Fraction of fragments in the largest component.
    pub lc_fraction: f64,
}

/// Split `reads` by the final component labels (`labels[frag]`), putting
/// fragments labeled `largest_root` into `lc`. Pairing is preserved: both
/// mates of a fragment go to the same side.
pub fn partition_reads(reads: &ReadStore, labels: &[u32], largest_root: u32) -> PartitionedReads {
    assert_eq!(
        labels.len(),
        reads.num_fragments() as usize,
        "labels must cover every fragment"
    );
    let lc = reads.filter_fragments(|f| labels[f as usize] == largest_root);
    let other = reads.filter_fragments(|f| labels[f as usize] != largest_root);
    let lc_fraction = if labels.is_empty() {
        0.0
    } else {
        labels.iter().filter(|&&l| l == largest_root).count() as f64 / labels.len() as f64
    };
    PartitionedReads {
        lc,
        other,
        lc_fraction,
    }
}

/// Write the partition as `lc.fastq` and `other.fastq` under `dir`.
pub fn write_partitions(dir: impl AsRef<Path>, parts: &PartitionedReads) -> io::Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    write_fastq_path(dir.join("lc.fastq"), &parts.lc)?;
    write_fastq_path(dir.join("other.fastq"), &parts.other)
}

/// A multi-way component split (the paper's §5 "alternate component-
/// splitting strategies"): the `n` largest components each get their own
/// read set; everything else (including components below `min_size`
/// fragments) is pooled into `rest`. Each bucket can be fed to an
/// assembler independently — the "assemble partitions in parallel" use
/// case generalized beyond LC-vs-rest.
#[derive(Clone, Debug)]
pub struct MultiPartition {
    /// `(component root, reads)` for the top components, largest first.
    pub buckets: Vec<(u32, ReadStore)>,
    /// Pooled remainder.
    pub rest: ReadStore,
}

/// Split `reads` into the `n` largest components (each at least
/// `min_size` fragments) plus a pooled remainder.
pub fn partition_top_n(
    reads: &ReadStore,
    labels: &[u32],
    n: usize,
    min_size: usize,
) -> MultiPartition {
    assert_eq!(labels.len(), reads.num_fragments() as usize);
    let mut size_of_root: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for &l in labels {
        *size_of_root.entry(l).or_insert(0) += 1;
    }
    let mut roots: Vec<(u32, usize)> = size_of_root
        .into_iter()
        .filter(|&(_, s)| s >= min_size)
        .collect();
    roots.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    roots.truncate(n);

    let buckets: Vec<(u32, ReadStore)> = roots
        .iter()
        .map(|&(root, _)| (root, reads.filter_fragments(|f| labels[f as usize] == root)))
        .collect();
    let selected: std::collections::HashSet<u32> = roots.iter().map(|&(r, _)| r).collect();
    let rest = reads.filter_fragments(|f| !selected.contains(&labels[f as usize]));
    MultiPartition { buckets, rest }
}

/// Write a [`MultiPartition`] as `comp_<i>.fastq` files plus `rest.fastq`.
pub fn write_multi_partition(dir: impl AsRef<Path>, parts: &MultiPartition) -> io::Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    for (i, (_, store)) in parts.buckets.iter().enumerate() {
        write_fastq_path(dir.join(format!("comp_{i}.fastq")), store)?;
    }
    write_fastq_path(dir.join("rest.fastq"), &parts.rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ReadStore {
        let mut s = ReadStore::new();
        s.push_pair(b"AAAA", b"TTTT"); // frag 0
        s.push_pair(b"CCCC", b"GGGG"); // frag 1
        s.push_single(b"ACGT"); // frag 2
        s
    }

    #[test]
    fn splits_by_label() {
        let s = store();
        let labels = vec![7, 7, 2]; // frags 0,1 together
        let parts = partition_reads(&s, &labels, 7);
        assert_eq!(parts.lc.num_fragments(), 2);
        assert_eq!(parts.lc.len(), 4);
        assert_eq!(parts.other.num_fragments(), 1);
        assert_eq!(parts.other.len(), 1);
        assert!((parts.lc_fraction - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pairs_stay_together() {
        let s = store();
        let parts = partition_reads(&s, &[5, 1, 5], 5);
        // frag 0 (pair) and frag 2 (single) in LC.
        assert_eq!(parts.lc.len(), 3);
        assert_eq!(parts.lc.frag_id(0), parts.lc.frag_id(1));
    }

    #[test]
    fn empty_labels_empty_store() {
        let parts = partition_reads(&ReadStore::new(), &[], 0);
        assert!(parts.lc.is_empty());
        assert!(parts.other.is_empty());
        assert_eq!(parts.lc_fraction, 0.0);
    }

    #[test]
    #[should_panic]
    fn label_count_mismatch_rejected() {
        partition_reads(&store(), &[0, 1], 0);
    }

    #[test]
    fn top_n_buckets_ordered_and_disjoint() {
        let mut s = ReadStore::new();
        for _ in 0..10 {
            s.push_single(b"ACGT");
        }
        // Components: {0..4} root 9, {5,6} root 7, {7} root 1, {8,9} root 3.
        let labels = vec![9, 9, 9, 9, 9, 7, 7, 1, 3, 3];
        // Remap to sizes 5, 2, 1, 2.
        let parts = partition_top_n(&s, &labels, 2, 2);
        assert_eq!(parts.buckets.len(), 2);
        assert_eq!(parts.buckets[0].0, 9);
        assert_eq!(parts.buckets[0].1.num_fragments(), 5);
        assert_eq!(parts.buckets[1].1.num_fragments(), 2);
        // rest = the other two components (sizes 1 + 2).
        assert_eq!(parts.rest.num_fragments(), 3);
        let total: u32 = parts
            .buckets
            .iter()
            .map(|(_, b)| b.num_fragments())
            .sum::<u32>()
            + parts.rest.num_fragments();
        assert_eq!(total, 10);
    }

    #[test]
    fn top_n_min_size_pools_small_components() {
        let mut s = ReadStore::new();
        for _ in 0..4 {
            s.push_single(b"ACGT");
        }
        let labels = vec![0, 1, 2, 3]; // all singletons
        let parts = partition_top_n(&s, &labels, 3, 2);
        assert!(parts.buckets.is_empty());
        assert_eq!(parts.rest.num_fragments(), 4);
    }

    #[test]
    fn multi_partition_writes_files() {
        let dir = std::env::temp_dir().join("metaprep_core_multipart_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = ReadStore::new();
        for _ in 0..6 {
            s.push_single(b"ACGT");
        }
        let labels = vec![5, 5, 5, 2, 2, 0];
        let parts = partition_top_n(&s, &labels, 2, 2);
        write_multi_partition(&dir, &parts).unwrap();
        assert!(dir.join("comp_0.fastq").exists());
        assert!(dir.join("comp_1.fastq").exists());
        assert!(dir.join("rest.fastq").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writes_both_files() {
        let dir = std::env::temp_dir().join("metaprep_core_output_test");
        let _ = std::fs::remove_dir_all(&dir);
        let s = store();
        let parts = partition_reads(&s, &[9, 9, 0], 9);
        write_partitions(&dir, &parts).unwrap();
        let lc = metaprep_io::parse_fastq_path(dir.join("lc.fastq"), false).unwrap();
        let other = metaprep_io::parse_fastq_path(dir.join("other.fastq"), false).unwrap();
        assert_eq!(lc.len(), 4);
        assert_eq!(other.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
