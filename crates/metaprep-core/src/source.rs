//! Chunk sources: where KmerGen's FASTQ chunks come from.
//!
//! The paper's METAPREP reads FASTQ chunks from a parallel file system on
//! every pass (that is the point of the multi-pass design: the *input* is
//! re-read, the *tuples* never all exist at once). The pipeline is generic
//! over a [`ChunkSource`]:
//!
//! * [`MemorySource`] — chunks are slices of an in-memory [`ReadStore`]
//!   (synthetic data, tests);
//! * [`FileSource`] — chunks are re-parsed from the FASTQ file on every
//!   load, so KmerGen-I/O is real disk traffic and per-pass redundant
//!   reading behaves exactly as in the paper.

use metaprep_io::{parse_fastq_chunk, ChunkSpec, ReadStore};
use std::path::PathBuf;

/// Provider of FASTQ chunks with *global* fragment ids.
pub trait ChunkSource: Sync {
    /// Load chunk `c`: each entry is `(sequence, global fragment id)`.
    fn load_chunk(&self, c: usize) -> Vec<(Vec<u8>, u32)>;

    /// Global fragment id of global sequence index `i` (used by the
    /// CC-I/O step, which walks a task's chunks to bucket output reads).
    fn frag_of_seq(&self, i: usize) -> u32;

    /// Total number of fragments (`R`).
    fn num_fragments(&self) -> u32;
}

/// Chunks served from an in-memory store.
pub struct MemorySource<'a> {
    store: &'a ReadStore,
    specs: Vec<ChunkSpec>,
}

impl<'a> MemorySource<'a> {
    /// Wrap `store` with the chunk layout in `specs`.
    pub fn new(store: &'a ReadStore, specs: Vec<ChunkSpec>) -> Self {
        Self { store, specs }
    }
}

impl ChunkSource for MemorySource<'_> {
    fn load_chunk(&self, c: usize) -> Vec<(Vec<u8>, u32)> {
        let spec = &self.specs[c];
        let lo = spec.first_seq as usize;
        (lo..lo + spec.seqs as usize)
            .map(|i| (self.store.seq(i).to_vec(), self.store.frag_id(i)))
            .collect()
    }

    fn frag_of_seq(&self, i: usize) -> u32 {
        self.store.frag_id(i)
    }

    fn num_fragments(&self) -> u32 {
        self.store.num_fragments()
    }
}

/// Chunks re-parsed from a FASTQ file on every load.
pub struct FileSource {
    path: PathBuf,
    specs: Vec<ChunkSpec>,
    paired: bool,
    num_fragments: u32,
}

impl FileSource {
    /// Create a source over `path` with the given chunk layout. When
    /// `paired`, sequences `2i` and `2i + 1` form fragment `i` (interleaved
    /// mates; the chunker guarantees chunks hold whole pairs).
    pub fn new(path: PathBuf, specs: Vec<ChunkSpec>, paired: bool, total_seqs: u32) -> Self {
        if paired {
            assert_eq!(total_seqs % 2, 0, "paired input needs an even read count");
            assert!(
                specs
                    .iter()
                    .all(|s| s.first_seq % 2 == 0 && s.seqs % 2 == 0),
                "paired chunks must hold whole pairs"
            );
        }
        let num_fragments = if paired { total_seqs / 2 } else { total_seqs };
        Self {
            path,
            specs,
            paired,
            num_fragments,
        }
    }

    /// The chunk layout.
    pub fn specs(&self) -> &[ChunkSpec] {
        &self.specs
    }
}

impl ChunkSource for FileSource {
    fn load_chunk(&self, c: usize) -> Vec<(Vec<u8>, u32)> {
        let spec = &self.specs[c];
        // Each load re-reads from disk — this IS the multi-pass I/O.
        let store = parse_fastq_chunk(&self.path, spec, false)
            // EXPECT: the file was indexed by this process; a failed re-read means it changed or vanished mid-run, unrecoverable for a multi-pass source.
            .expect("chunk read failed (file changed since indexing?)");
        (0..store.len())
            .map(|i| {
                let global = spec.first_seq as usize + i;
                (store.seq(i).to_vec(), self.frag_of_seq(global))
            })
            .collect()
    }

    fn frag_of_seq(&self, i: usize) -> u32 {
        if self.paired {
            (i / 2) as u32
        } else {
            i as u32
        }
    }

    fn num_fragments(&self) -> u32 {
        self.num_fragments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaprep_io::{chunk_store, write_fastq};

    fn store() -> ReadStore {
        let mut s = ReadStore::new();
        for i in 0..12 {
            let seq: Vec<u8> = b"ACGTTGCA"
                .iter()
                .cycle()
                .skip(i % 8)
                .take(30)
                .copied()
                .collect();
            if i % 2 == 0 {
                s.push_pair(&seq, &seq[..20]);
            } else {
                // keep pairing uniform: the pair above covers 2 seqs
            }
        }
        s
    }

    #[test]
    fn memory_source_serves_chunks() {
        let s = store();
        let specs = chunk_store(&s, 3);
        let src = MemorySource::new(&s, specs.clone());
        let mut total = 0;
        for (c, spec) in specs.iter().enumerate() {
            let chunk = src.load_chunk(c);
            assert_eq!(chunk.len(), spec.seqs as usize);
            for (j, (seq, frag)) in chunk.iter().enumerate() {
                let i = spec.first_seq as usize + j;
                assert_eq!(&seq[..], s.seq(i));
                assert_eq!(*frag, s.frag_id(i));
            }
            total += chunk.len();
        }
        assert_eq!(total, s.len());
        assert_eq!(src.num_fragments(), s.num_fragments());
    }

    #[test]
    fn file_source_matches_memory_source() {
        let s = store();
        let mut bytes = Vec::new();
        write_fastq(&mut bytes, &s).unwrap();
        let dir = std::env::temp_dir().join("metaprep_core_source_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reads.fastq");
        std::fs::write(&path, &bytes).unwrap();

        let specs = metaprep_io::chunk_fastq_bytes(&bytes, 1).unwrap(); // single chunk
        let src = FileSource::new(path, specs.clone(), true, s.len() as u32);
        let chunk = src.load_chunk(0);
        assert_eq!(chunk.len(), s.len());
        for (i, (seq, frag)) in chunk.iter().enumerate() {
            assert_eq!(&seq[..], s.seq(i));
            assert_eq!(*frag, s.frag_id(i));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic]
    fn file_source_rejects_pair_splitting_chunks() {
        let bad = vec![ChunkSpec {
            offset: 0,
            bytes: 10,
            first_seq: 1, // odd start splits a pair
            seqs: 2,
        }];
        let _ = FileSource::new(PathBuf::from("/dev/null"), bad, true, 4);
    }

    #[test]
    fn unpaired_file_source_frag_is_identity() {
        let src = FileSource::new(PathBuf::from("x"), vec![], false, 7);
        assert_eq!(src.frag_of_seq(3), 3);
        assert_eq!(src.num_fragments(), 7);
    }
}
