//! KmerGen: per-task tuple enumeration (paper §3.2).

use crate::source::ChunkSource;
use metaprep_index::{FastqPart, RangePlan};
use metaprep_kmer::{
    fold_kmer_key, for_each_canonical_kmer, lanes::for_each_canonical_kmer_x4, Kmer, Kmer128,
    Kmer64, KmerReadTuple, KmerReadTuple128,
};
use metaprep_norm::HighFreqFilter;
use metaprep_sort::Keyed;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Glue between a k-mer width and its pipeline tuple type.
pub trait PipelineKmer: Kmer {
    /// The `(k-mer, read id)` tuple carried through comm/sort/CC.
    type Tuple: Keyed<Key = <Self as Kmer>::Repr> + Default + Copy + Send + Sync + 'static;
    /// Packed tuple size in the paper's representation (12 or 20 bytes).
    const PACKED_TUPLE_BYTES: usize;

    /// Build a tuple.
    fn make_tuple(v: <Self as Kmer>::Repr, read: u32) -> Self::Tuple;
    /// Read id of a tuple.
    fn tuple_read(t: &Self::Tuple) -> u32;
    /// Convert a `u128` plan boundary into this width's key type.
    fn repr_from_u128(v: u128) -> <Self as Kmer>::Repr;
    /// The presolve-sketch key of a packed canonical value — the same
    /// derivation the IndexCreate sketch builder used, so filter probes
    /// hit the cells the scan populated.
    fn sketch_key(v: <Self as Kmer>::Repr) -> u64;
}

impl PipelineKmer for Kmer64 {
    type Tuple = KmerReadTuple;
    const PACKED_TUPLE_BYTES: usize = KmerReadTuple::PACKED_BYTES;

    #[inline(always)]
    fn make_tuple(v: u64, read: u32) -> KmerReadTuple {
        KmerReadTuple::new(v, read)
    }

    #[inline(always)]
    fn tuple_read(t: &KmerReadTuple) -> u32 {
        t.read
    }

    #[inline(always)]
    fn repr_from_u128(v: u128) -> u64 {
        v as u64
    }

    #[inline(always)]
    fn sketch_key(v: u64) -> u64 {
        v
    }
}

impl PipelineKmer for Kmer128 {
    type Tuple = KmerReadTuple128;
    const PACKED_TUPLE_BYTES: usize = KmerReadTuple128::PACKED_BYTES;

    #[inline(always)]
    fn make_tuple(v: u128, read: u32) -> KmerReadTuple128 {
        KmerReadTuple128::new(v, read)
    }

    #[inline(always)]
    fn tuple_read(t: &KmerReadTuple128) -> u32 {
        t.read
    }

    #[inline(always)]
    fn repr_from_u128(v: u128) -> u128 {
        v
    }

    #[inline(always)]
    fn sketch_key(v: u128) -> u64 {
        fold_kmer_key(v)
    }
}

/// Output of one task's KmerGen for one pass.
pub struct KmerGenOutput<T> {
    /// `outgoing[q]` — tuples destined for task `q`, in chunk order.
    pub outgoing: Vec<Vec<T>>,
    /// Simulated FASTQ-chunk load time ("KmerGen-I/O"): the time spent
    /// copying chunk bytes into thread-local buffers, CPU-time summed
    /// across threads.
    pub io_nanos: u64,
    /// Enumeration time, CPU-time summed across threads.
    pub gen_nanos: u64,
    /// K-mer occurrences dropped by the presolve filter before any tuple
    /// was materialized (0 without a filter). Conservation:
    /// `sum(outgoing) + dropped == enumerated`.
    pub dropped: u64,
}

/// Enumerate this task's tuples for `pass`.
///
/// * `my_chunks` — chunk indices this task owns;
/// * `bin_owner` — the plan's m-mer-bin → `pass * P + task` table;
/// * `read_label` — identity for plain LocalCC; the task's current
///   `Find(read)` for LocalCC-Opt passes (paper §3.5.1).
///
/// Per-destination buffers are preallocated to their *exact* sizes computed
/// from the `FASTQPart` chunk histograms (the paper's offset precomputation,
/// §3.2.2) — an assertion checks the histogram arithmetic agrees with the
/// enumeration.
#[allow(clippy::too_many_arguments)]
pub fn kmergen_pass<K: PipelineKmer, S: ChunkSource>(
    pool: &rayon::ThreadPool,
    source: &S,
    fastqpart: &FastqPart,
    plan: &RangePlan,
    my_chunks: &[usize],
    bin_owner: &[u32],
    pass: usize,
    use_x4: bool,
    filter: Option<&HighFreqFilter>,
    read_label: impl Fn(u32) -> u32 + Sync,
) -> KmerGenOutput<K::Tuple> {
    use rayon::prelude::*;

    let tasks = plan.tasks();
    let k = plan.k();
    let space = fastqpart.space();
    debug_assert_eq!(space.k(), k);
    let io_nanos = AtomicU64::new(0);
    let gen_nanos = AtomicU64::new(0);
    let dropped = AtomicU64::new(0);

    let per_chunk: Vec<Vec<Vec<K::Tuple>>> = pool.install(|| {
        my_chunks
            .par_iter()
            .map(|&c| {
                // Chunk load (KmerGen-I/O): a copy from the in-memory store
                // (MemorySource) or a real seek+read+parse from the FASTQ
                // file (FileSource) — either way, into this thread's
                // FASTQBuffer.
                let t_io = Instant::now();
                let buffer = source.load_chunk(c);
                // ORDERING: Relaxed — profiling counter, summed after join.
                io_nanos.fetch_add(t_io.elapsed().as_nanos() as u64, Ordering::Relaxed);

                let t_gen = Instant::now();
                let mut bufs: Vec<Vec<K::Tuple>> = (0..tasks)
                    .map(|q| {
                        let (blo, bhi) = plan.task_bin_range(pass, q);
                        Vec::with_capacity(fastqpart.chunk_count_in_bins(c, blo, bhi) as usize)
                    })
                    .collect();
                let mut dropped_per_dest = vec![0u64; tasks];
                for (seq, frag) in &buffer {
                    let label = read_label(*frag);
                    emit_kmers::<K>(seq, k, use_x4, |v| {
                        let bin = space.bin_of(K::repr_to_u128(v));
                        let owner = bin_owner[bin as usize] as usize;
                        if owner / tasks == pass {
                            let dest = owner % tasks;
                            if let Some(f) = filter {
                                if f.drops(K::sketch_key(v)) {
                                    dropped_per_dest[dest] += 1;
                                    return;
                                }
                            }
                            bufs[dest].push(K::make_tuple(v, label));
                        }
                    });
                }
                // ORDERING: Relaxed — profiling counter, summed after join.
                gen_nanos.fetch_add(t_gen.elapsed().as_nanos() as u64, Ordering::Relaxed);

                // The index-table arithmetic must match the enumeration:
                // every histogram-counted k-mer was either emitted or
                // filter-dropped, never lost.
                for (q, b) in bufs.iter().enumerate() {
                    let (blo, bhi) = plan.task_bin_range(pass, q);
                    debug_assert_eq!(
                        b.len() as u64 + dropped_per_dest[q],
                        fastqpart.chunk_count_in_bins(c, blo, bhi),
                        "chunk {c} dest {q}: histogram disagrees with enumeration"
                    );
                }
                // ORDERING: Relaxed — conservation counter, summed after join.
                dropped.fetch_add(dropped_per_dest.iter().sum::<u64>(), Ordering::Relaxed);
                bufs
            })
            .collect()
    });

    // Concatenate per destination, in chunk order (stable).
    let mut outgoing: Vec<Vec<K::Tuple>> = (0..tasks).map(|_| Vec::new()).collect();
    for (q, out) in outgoing.iter_mut().enumerate() {
        let total: usize = per_chunk.iter().map(|b| b[q].len()).sum();
        out.reserve_exact(total);
        for bufs in &per_chunk {
            out.extend_from_slice(&bufs[q]);
        }
    }

    KmerGenOutput {
        outgoing,
        io_nanos: io_nanos.into_inner(),
        gen_nanos: gen_nanos.into_inner(),
        dropped: dropped.into_inner(),
    }
}

/// Dispatch between the scalar and 4-lane generators.
#[inline]
fn emit_kmers<K: PipelineKmer>(seq: &[u8], k: usize, use_x4: bool, mut f: impl FnMut(K::Repr)) {
    if use_x4 {
        for_each_canonical_kmer_x4::<K>(seq, k, |v, _| f(v));
    } else {
        for_each_canonical_kmer::<K>(seq, k, |v, _| f(v));
    }
}

/// Expected tuples task `rank` receives from all chunks in `pass` —
/// the receive-count precomputation of paper §3.3. With a presolve
/// filter active this is an **upper bound** (drops are value-granular,
/// the histogram is bin-granular); exact otherwise.
pub fn expected_incoming(fastqpart: &FastqPart, plan: &RangePlan, pass: usize, rank: usize) -> u64 {
    let (blo, bhi) = plan.task_bin_range(pass, rank);
    (0..fastqpart.len())
        .map(|c| fastqpart.chunk_count_in_bins(c, blo, bhi))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::MemorySource;
    use metaprep_index::MerHist;
    use metaprep_io::ReadStore;

    fn mem_source<'a>(s: &'a ReadStore, fp: &FastqPart) -> MemorySource<'a> {
        MemorySource::new(s, fp.chunks().iter().map(|r| r.spec).collect())
    }

    fn store() -> ReadStore {
        let mut s = ReadStore::new();
        let mut x = 7u64;
        for _ in 0..40 {
            let seq: Vec<u8> = (0..60)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    b"ACGT"[(x >> 61) as usize & 3]
                })
                .collect();
            s.push_pair(&seq[..30], &seq[30..]);
        }
        s
    }

    fn setup(k: usize, passes: usize, tasks: usize) -> (ReadStore, FastqPart, RangePlan) {
        let s = store();
        let mh = MerHist::build(&s, k, 4);
        let fp = FastqPart::build(&s, 6, k, 4);
        let plan = RangePlan::build(&mh, passes, tasks, 2);
        (s, fp, plan)
    }

    #[test]
    fn all_tuples_emitted_across_passes_and_tasks() {
        let (s, fp, plan) = setup(11, 2, 3);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let table = plan.bin_owner_table();
        let all_chunks: Vec<usize> = (0..fp.len()).collect();
        let mut total = 0u64;
        for pass in 0..2 {
            let src = mem_source(&s, &fp);
            let out = kmergen_pass::<Kmer64, _>(
                &pool,
                &src,
                &fp,
                &plan,
                &all_chunks,
                &table,
                pass,
                false,
                None,
                |r| r,
            );
            total += out.outgoing.iter().map(|v| v.len() as u64).sum::<u64>();
        }
        assert_eq!(total, fp.total());
    }

    #[test]
    fn tuples_land_in_owner_range() {
        let (s, fp, plan) = setup(11, 1, 4);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let table = plan.bin_owner_table();
        let all_chunks: Vec<usize> = (0..fp.len()).collect();
        let src = mem_source(&s, &fp);
        let out = kmergen_pass::<Kmer64, _>(
            &pool,
            &src,
            &fp,
            &plan,
            &all_chunks,
            &table,
            0,
            false,
            None,
            |r| r,
        );
        for (q, buf) in out.outgoing.iter().enumerate() {
            let (lo, hi) = plan.task_range(0, q);
            for t in buf {
                let v = t.kmer as u128;
                assert!(v >= lo && v < hi, "task {q}: kmer out of range");
            }
        }
    }

    #[test]
    fn expected_incoming_matches_actual() {
        let (s, fp, plan) = setup(11, 2, 3);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let table = plan.bin_owner_table();
        let all_chunks: Vec<usize> = (0..fp.len()).collect();
        for pass in 0..2 {
            let src = mem_source(&s, &fp);
            let out = kmergen_pass::<Kmer64, _>(
                &pool,
                &src,
                &fp,
                &plan,
                &all_chunks,
                &table,
                pass,
                false,
                None,
                |r| r,
            );
            for q in 0..3 {
                assert_eq!(
                    out.outgoing[q].len() as u64,
                    expected_incoming(&fp, &plan, pass, q),
                    "pass {pass} task {q}"
                );
            }
        }
    }

    #[test]
    fn x4_matches_scalar_multiset() {
        let (s, fp, plan) = setup(11, 1, 2);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let table = plan.bin_owner_table();
        let all_chunks: Vec<usize> = (0..fp.len()).collect();
        let src = mem_source(&s, &fp);
        let a = kmergen_pass::<Kmer64, _>(
            &pool,
            &src,
            &fp,
            &plan,
            &all_chunks,
            &table,
            0,
            false,
            None,
            |r| r,
        );
        let b = kmergen_pass::<Kmer64, _>(
            &pool,
            &src,
            &fp,
            &plan,
            &all_chunks,
            &table,
            0,
            true,
            None,
            |r| r,
        );
        for q in 0..2 {
            let mut x: Vec<_> = a.outgoing[q].iter().map(|t| (t.kmer, t.read)).collect();
            let mut y: Vec<_> = b.outgoing[q].iter().map(|t| (t.kmer, t.read)).collect();
            x.sort_unstable();
            y.sort_unstable();
            assert_eq!(x, y, "task {q}");
        }
    }

    #[test]
    fn read_label_substitution_applies() {
        let (s, fp, plan) = setup(11, 1, 1);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let table = plan.bin_owner_table();
        let all_chunks: Vec<usize> = (0..fp.len()).collect();
        // Map every read to label 0 (as an extreme LocalCC-Opt would).
        let src = mem_source(&s, &fp);
        let out = kmergen_pass::<Kmer64, _>(
            &pool,
            &src,
            &fp,
            &plan,
            &all_chunks,
            &table,
            0,
            false,
            None,
            |_| 0,
        );
        assert!(out.outgoing[0].iter().all(|t| t.read == 0));
    }

    #[test]
    fn filter_drops_frequent_kmers_and_conserves_counts() {
        use metaprep_norm::SketchParams;
        use std::collections::HashMap;

        // The random store plus a handful of duplicated reads, so some
        // k-mers are genuinely frequent and a threshold of 2 has teeth.
        let mut s = store();
        let hot: Vec<u8> = b"ACGT".iter().cycle().take(60).copied().collect();
        for _ in 0..5 {
            s.push_pair(&hot[..30], &hot[30..]);
        }
        let mh = MerHist::build(&s, 11, 4);
        let fp = FastqPart::build(&s, 6, 11, 4);
        let plan = RangePlan::build(&mh, 2, 3, 2);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let table = plan.bin_owner_table();
        let all_chunks: Vec<usize> = (0..fp.len()).collect();

        // Exact truth and a generous sketch over the same enumeration.
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut sketch = SketchParams::default().build();
        for (seq, _) in s.iter() {
            for_each_canonical_kmer::<Kmer64>(seq, 11, |v, _| {
                *truth.entry(v).or_insert(0) += 1;
                sketch.add(v);
            });
        }
        let threshold = 2u32;
        let filter = HighFreqFilter::new(sketch, threshold);
        assert!(
            truth.values().any(|&c| c > u64::from(threshold)),
            "test input must contain a frequent k-mer"
        );

        let mut emitted = 0u64;
        let mut dropped = 0u64;
        for pass in 0..2 {
            let src = mem_source(&s, &fp);
            let out = kmergen_pass::<Kmer64, _>(
                &pool,
                &src,
                &fp,
                &plan,
                &all_chunks,
                &table,
                pass,
                false,
                Some(&filter),
                |r| r,
            );
            emitted += out.outgoing.iter().map(|v| v.len() as u64).sum::<u64>();
            dropped += out.dropped;
            // No surviving tuple's k-mer may be truly frequent: estimates
            // never under-count, so a frequent value always drops.
            for buf in &out.outgoing {
                for t in buf {
                    assert!(
                        truth[&t.kmer] <= u64::from(threshold),
                        "frequent kmer survived"
                    );
                }
            }
        }
        assert!(dropped > 0, "filter should have dropped something");
        assert_eq!(emitted + dropped, fp.total(), "conservation");
    }

    #[test]
    fn kmer128_path_works() {
        let (s, fp, plan) = {
            let s = store();
            let mh = MerHist::build(&s, 35, 4);
            let fp = FastqPart::build(&s, 4, 35, 4);
            let plan = RangePlan::build(&mh, 1, 2, 2);
            (s, fp, plan)
        };
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let table = plan.bin_owner_table();
        let all_chunks: Vec<usize> = (0..fp.len()).collect();
        let src = mem_source(&s, &fp);
        let out = kmergen_pass::<Kmer128, _>(
            &pool,
            &src,
            &fp,
            &plan,
            &all_chunks,
            &table,
            0,
            false,
            None,
            |r| r,
        );
        let total: u64 = out.outgoing.iter().map(|v| v.len() as u64).sum();
        assert_eq!(total, fp.total());
    }
}
