//! Per-step, per-task timing — the raw material of every scaling figure.

use metaprep_obs::SpanEvent;
use std::time::Duration;

/// The pipeline steps, named as in the paper's figures.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Step {
    /// Reading FASTQ chunk data (KmerGen-I/O).
    KmerGenIo,
    /// Enumerating `(k-mer, read)` tuples.
    KmerGen,
    /// The P-stage all-to-all (KmerGen-Comm).
    KmerGenComm,
    /// Range partition + per-thread serial radix sort.
    LocalSort,
    /// Concurrent union-find over the implicit edges (LocalCC / -Opt).
    LocalCc,
    /// Sending/receiving component arrays in the merge rounds (Merge-Comm).
    MergeComm,
    /// Absorbing received component arrays (MergeCC).
    MergeCc,
    /// Broadcasting final labels and partitioning output reads (CC-I/O).
    CcIo,
}

impl Step {
    /// All steps in pipeline order.
    pub fn all() -> [Step; 8] {
        [
            Step::KmerGenIo,
            Step::KmerGen,
            Step::KmerGenComm,
            Step::LocalSort,
            Step::LocalCc,
            Step::MergeComm,
            Step::MergeCc,
            Step::CcIo,
        ]
    }

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Step::KmerGenIo => "KmerGen-I/O",
            Step::KmerGen => "KmerGen",
            Step::KmerGenComm => "KmerGen-Comm",
            Step::LocalSort => "LocalSort",
            Step::LocalCc => "LocalCC-Opt",
            Step::MergeComm => "Merge-Comm",
            Step::MergeCc => "MergeCC",
            Step::CcIo => "CC-I/O",
        }
    }

    /// Inverse of [`Step::name`] — used to rebuild timings from spans.
    pub fn from_name(name: &str) -> Option<Step> {
        Step::all().into_iter().find(|s| s.name() == name)
    }
}

/// One task's accumulated time per step (summed over passes).
#[derive(Clone, Debug, Default)]
pub struct TaskTimings {
    durations: [Duration; 8],
}

impl TaskTimings {
    /// Add `d` to `step`.
    pub fn add(&mut self, step: Step, d: Duration) {
        self.durations[Self::idx(step)] += d;
    }

    /// Accumulated time of `step`.
    pub fn get(&self, step: Step) -> Duration {
        self.durations[Self::idx(step)]
    }

    /// Sum over all steps.
    pub fn total(&self) -> Duration {
        self.durations.iter().sum()
    }

    /// Direct index into `durations`; must agree with [`Step::all`]
    /// order (asserted by a test below).
    fn idx(step: Step) -> usize {
        match step {
            Step::KmerGenIo => 0,
            Step::KmerGen => 1,
            Step::KmerGenComm => 2,
            Step::LocalSort => 3,
            Step::LocalCc => 4,
            Step::MergeComm => 5,
            Step::MergeCc => 6,
            Step::CcIo => 7,
        }
    }

    /// Rebuild one task's timings from its recorded step spans: every
    /// span whose name matches a paper step adds its duration. This is
    /// how the pipeline derives `StepTimings` from telemetry — spans are
    /// the source of truth, and a differential test in `pipeline.rs`
    /// pins this to the historical ad-hoc accumulation.
    pub fn from_spans(spans: &[SpanEvent]) -> TaskTimings {
        let mut t = TaskTimings::default();
        for span in spans {
            if let Some(step) = Step::from_name(span.name) {
                t.add(step, Duration::from_nanos(span.dur_ns()));
            }
        }
        t
    }
}

/// Timings of a whole run: one [`TaskTimings`] per task, plus the
/// sequential index-creation time.
#[derive(Clone, Debug, Default)]
pub struct StepTimings {
    /// IndexCreate time (sequential, once per dataset; paper Table 5).
    pub index_create: Duration,
    /// Per-task step timings, indexed by rank.
    pub per_task: Vec<TaskTimings>,
}

impl StepTimings {
    /// Maximum (critical-path) time of a step across tasks — what the
    /// stacked bars of Figures 5–7 show.
    pub fn max_of(&self, step: Step) -> Duration {
        self.per_task
            .iter()
            .map(|t| t.get(step))
            .max()
            .unwrap_or_default()
    }

    /// Five-number summary `(min, q1, median, q3, max)` of a step across
    /// tasks — the box-plot data of Figure 8.
    pub fn five_number_summary(&self, step: Step) -> (f64, f64, f64, f64, f64) {
        let mut xs: Vec<f64> = self
            .per_task
            .iter()
            .map(|t| t.get(step).as_secs_f64())
            .collect();
        if xs.is_empty() {
            return (0.0, 0.0, 0.0, 0.0, 0.0);
        }
        xs.sort_by(f64::total_cmp);
        let q = |f: f64| -> f64 {
            let pos = f * (xs.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            if lo == hi {
                xs[lo]
            } else {
                xs[lo] + (pos - lo as f64) * (xs[hi] - xs[lo])
            }
        };
        (q(0.0), q(0.25), q(0.5), q(0.75), q(1.0))
    }

    /// End-to-end pipeline time: max total across tasks (excludes
    /// IndexCreate, which the paper reports separately).
    pub fn total(&self) -> Duration {
        self.per_task
            .iter()
            .map(|t| t.total())
            .max()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut t = TaskTimings::default();
        t.add(Step::LocalSort, Duration::from_millis(5));
        t.add(Step::LocalSort, Duration::from_millis(7));
        assert_eq!(t.get(Step::LocalSort), Duration::from_millis(12));
        assert_eq!(t.get(Step::KmerGen), Duration::ZERO);
        assert_eq!(t.total(), Duration::from_millis(12));
    }

    #[test]
    fn max_of_across_tasks() {
        let mut a = TaskTimings::default();
        a.add(Step::KmerGen, Duration::from_millis(10));
        let mut b = TaskTimings::default();
        b.add(Step::KmerGen, Duration::from_millis(30));
        let st = StepTimings {
            index_create: Duration::ZERO,
            per_task: vec![a, b],
        };
        assert_eq!(st.max_of(Step::KmerGen), Duration::from_millis(30));
        assert_eq!(st.total(), Duration::from_millis(30));
    }

    #[test]
    fn five_number_summary_of_known_data() {
        let per_task: Vec<TaskTimings> = (1..=5)
            .map(|i| {
                let mut t = TaskTimings::default();
                t.add(Step::MergeCc, Duration::from_secs(i));
                t
            })
            .collect();
        let st = StepTimings {
            index_create: Duration::ZERO,
            per_task,
        };
        let (min, q1, med, q3, max) = st.five_number_summary(Step::MergeCc);
        assert_eq!(min, 1.0);
        assert_eq!(q1, 2.0);
        assert_eq!(med, 3.0);
        assert_eq!(q3, 4.0);
        assert_eq!(max, 5.0);
    }

    #[test]
    fn empty_summary_is_zero() {
        let st = StepTimings::default();
        assert_eq!(
            st.five_number_summary(Step::CcIo),
            (0.0, 0.0, 0.0, 0.0, 0.0)
        );
        assert_eq!(st.total(), Duration::ZERO);
    }

    #[test]
    fn step_names_match_paper() {
        assert_eq!(Step::KmerGenComm.name(), "KmerGen-Comm");
        assert_eq!(Step::all().len(), 8);
    }

    #[test]
    fn idx_agrees_with_step_all_order() {
        for (i, step) in Step::all().into_iter().enumerate() {
            assert_eq!(TaskTimings::idx(step), i, "idx({step:?})");
        }
    }

    #[test]
    fn step_names_match_obs_step_names() {
        let ours: Vec<&str> = Step::all().iter().map(|s| s.name()).collect();
        assert_eq!(ours, metaprep_obs::event::STEP_NAMES.to_vec());
        for step in Step::all() {
            assert_eq!(Step::from_name(step.name()), Some(step));
        }
        assert_eq!(Step::from_name("NotAStep"), None);
    }

    #[test]
    fn five_number_summary_sort_is_total_order() {
        // Regression: the sort used partial_cmp(..).expect("no NaN");
        // total_cmp gives a total order over every f64, including zeros
        // and subnormals, so summaries never panic on edge values.
        let per_task: Vec<TaskTimings> = [0u64, u64::from(u32::MAX), 1, 0, 500]
            .iter()
            .map(|&ns| {
                let mut t = TaskTimings::default();
                t.add(Step::KmerGenIo, Duration::from_nanos(ns));
                t
            })
            .collect();
        let st = StepTimings {
            index_create: Duration::ZERO,
            per_task,
        };
        let (min, _, med, _, max) = st.five_number_summary(Step::KmerGenIo);
        assert_eq!(min, 0.0);
        // Sorted: [0, 0, 1, 500, u32::MAX] ns — the median is the 1 ns
        // sample (an exact rank, no interpolation).
        assert_eq!(med, 1e-9);
        assert_eq!(max, u32::MAX as f64 * 1e-9);
    }

    #[test]
    fn from_spans_accumulates_matching_names_only() {
        let mk = |name, start_ns, end_ns| SpanEvent {
            task: 0,
            name,
            pass: Some(0),
            detail: None,
            start_ns,
            end_ns,
            lamport: 0,
        };
        let spans = [
            mk("KmerGen", 0, 100),
            mk("KmerGen", 200, 250),
            mk("alltoall-stage", 300, 400), // sub-span: not a step
            mk("LocalSort", 400, 450),
        ];
        let t = TaskTimings::from_spans(&spans);
        assert_eq!(t.get(Step::KmerGen), Duration::from_nanos(150));
        assert_eq!(t.get(Step::LocalSort), Duration::from_nanos(50));
        assert_eq!(t.total(), Duration::from_nanos(200));
    }
}
