//! Per-step, per-task timing — the raw material of every scaling figure.

use std::time::Duration;

/// The pipeline steps, named as in the paper's figures.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Step {
    /// Reading FASTQ chunk data (KmerGen-I/O).
    KmerGenIo,
    /// Enumerating `(k-mer, read)` tuples.
    KmerGen,
    /// The P-stage all-to-all (KmerGen-Comm).
    KmerGenComm,
    /// Range partition + per-thread serial radix sort.
    LocalSort,
    /// Concurrent union-find over the implicit edges (LocalCC / -Opt).
    LocalCc,
    /// Sending/receiving component arrays in the merge rounds (Merge-Comm).
    MergeComm,
    /// Absorbing received component arrays (MergeCC).
    MergeCc,
    /// Broadcasting final labels and partitioning output reads (CC-I/O).
    CcIo,
}

impl Step {
    /// All steps in pipeline order.
    pub fn all() -> [Step; 8] {
        [
            Step::KmerGenIo,
            Step::KmerGen,
            Step::KmerGenComm,
            Step::LocalSort,
            Step::LocalCc,
            Step::MergeComm,
            Step::MergeCc,
            Step::CcIo,
        ]
    }

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Step::KmerGenIo => "KmerGen-I/O",
            Step::KmerGen => "KmerGen",
            Step::KmerGenComm => "KmerGen-Comm",
            Step::LocalSort => "LocalSort",
            Step::LocalCc => "LocalCC-Opt",
            Step::MergeComm => "Merge-Comm",
            Step::MergeCc => "MergeCC",
            Step::CcIo => "CC-I/O",
        }
    }
}

/// One task's accumulated time per step (summed over passes).
#[derive(Clone, Debug, Default)]
pub struct TaskTimings {
    durations: [Duration; 8],
}

impl TaskTimings {
    /// Add `d` to `step`.
    pub fn add(&mut self, step: Step, d: Duration) {
        self.durations[Self::idx(step)] += d;
    }

    /// Accumulated time of `step`.
    pub fn get(&self, step: Step) -> Duration {
        self.durations[Self::idx(step)]
    }

    /// Sum over all steps.
    pub fn total(&self) -> Duration {
        self.durations.iter().sum()
    }

    fn idx(step: Step) -> usize {
        Step::all()
            .iter()
            .position(|&s| s == step)
            .expect("known step")
    }
}

/// Timings of a whole run: one [`TaskTimings`] per task, plus the
/// sequential index-creation time.
#[derive(Clone, Debug, Default)]
pub struct StepTimings {
    /// IndexCreate time (sequential, once per dataset; paper Table 5).
    pub index_create: Duration,
    /// Per-task step timings, indexed by rank.
    pub per_task: Vec<TaskTimings>,
}

impl StepTimings {
    /// Maximum (critical-path) time of a step across tasks — what the
    /// stacked bars of Figures 5–7 show.
    pub fn max_of(&self, step: Step) -> Duration {
        self.per_task
            .iter()
            .map(|t| t.get(step))
            .max()
            .unwrap_or_default()
    }

    /// Five-number summary `(min, q1, median, q3, max)` of a step across
    /// tasks — the box-plot data of Figure 8.
    pub fn five_number_summary(&self, step: Step) -> (f64, f64, f64, f64, f64) {
        let mut xs: Vec<f64> = self
            .per_task
            .iter()
            .map(|t| t.get(step).as_secs_f64())
            .collect();
        if xs.is_empty() {
            return (0.0, 0.0, 0.0, 0.0, 0.0);
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let q = |f: f64| -> f64 {
            let pos = f * (xs.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            if lo == hi {
                xs[lo]
            } else {
                xs[lo] + (pos - lo as f64) * (xs[hi] - xs[lo])
            }
        };
        (q(0.0), q(0.25), q(0.5), q(0.75), q(1.0))
    }

    /// End-to-end pipeline time: max total across tasks (excludes
    /// IndexCreate, which the paper reports separately).
    pub fn total(&self) -> Duration {
        self.per_task
            .iter()
            .map(|t| t.total())
            .max()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut t = TaskTimings::default();
        t.add(Step::LocalSort, Duration::from_millis(5));
        t.add(Step::LocalSort, Duration::from_millis(7));
        assert_eq!(t.get(Step::LocalSort), Duration::from_millis(12));
        assert_eq!(t.get(Step::KmerGen), Duration::ZERO);
        assert_eq!(t.total(), Duration::from_millis(12));
    }

    #[test]
    fn max_of_across_tasks() {
        let mut a = TaskTimings::default();
        a.add(Step::KmerGen, Duration::from_millis(10));
        let mut b = TaskTimings::default();
        b.add(Step::KmerGen, Duration::from_millis(30));
        let st = StepTimings {
            index_create: Duration::ZERO,
            per_task: vec![a, b],
        };
        assert_eq!(st.max_of(Step::KmerGen), Duration::from_millis(30));
        assert_eq!(st.total(), Duration::from_millis(30));
    }

    #[test]
    fn five_number_summary_of_known_data() {
        let per_task: Vec<TaskTimings> = (1..=5)
            .map(|i| {
                let mut t = TaskTimings::default();
                t.add(Step::MergeCc, Duration::from_secs(i));
                t
            })
            .collect();
        let st = StepTimings {
            index_create: Duration::ZERO,
            per_task,
        };
        let (min, q1, med, q3, max) = st.five_number_summary(Step::MergeCc);
        assert_eq!(min, 1.0);
        assert_eq!(q1, 2.0);
        assert_eq!(med, 3.0);
        assert_eq!(q3, 4.0);
        assert_eq!(max, 5.0);
    }

    #[test]
    fn empty_summary_is_zero() {
        let st = StepTimings::default();
        assert_eq!(
            st.five_number_summary(Step::CcIo),
            (0.0, 0.0, 0.0, 0.0, 0.0)
        );
        assert_eq!(st.total(), Duration::ZERO);
    }

    #[test]
    fn step_names_match_paper() {
        assert_eq!(Step::KmerGenComm.name(), "KmerGen-Comm");
        assert_eq!(Step::all().len(), 8);
    }
}
