//! Count-min sketch over k-mer values.
//!
//! A `d x w` matrix of saturating `u16` counters with `d` pairwise
//! independent multiply-shift hashes. Estimates never under-count
//! (conservative update keeps over-counting small), which is the right
//! bias for digital normalization: over-estimating abundance only makes
//! the filter drop a redundant read slightly early.

/// Count-min sketch for `u64`-packed k-mers.
#[derive(Clone, Debug)]
pub struct CountMinSketch {
    width: usize,
    rows: Vec<Vec<u16>>,
    salts: Vec<u64>,
}

/// `(width, depth, seed)` triple describing a sketch's hash family and
/// shape. Two sketches built from the same params are mergeable; the
/// pipeline threads this through the IndexCreate scan so every worker
/// sketches into the same family.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SketchParams {
    /// Counters per row (rounded up to a power of two at build time).
    pub width: usize,
    /// Number of hash rows.
    pub depth: usize,
    /// Seed for the multiply-shift salt family.
    pub seed: u64,
}

impl SketchParams {
    /// Instantiate an empty sketch with this shape.
    pub fn build(&self) -> CountMinSketch {
        CountMinSketch::new(self.width, self.depth, self.seed)
    }
}

impl Default for SketchParams {
    /// 2^18 x 4 u16 counters = 2 MiB — comfortably exact for the distinct
    /// k-mer counts of the smoke-scale workloads, and still a rounding
    /// error next to one pass of tuple buffers.
    fn default() -> Self {
        SketchParams {
            width: 1 << 18,
            depth: 4,
            seed: 0x5EED_C0DE,
        }
    }
}

/// Frequency filter over a frozen count-min sketch: `drops(key)` is true
/// when the *estimated* count exceeds the threshold. Because estimates
/// never under-count, every k-mer whose true count exceeds the threshold
/// is dropped; a k-mer at or under the threshold survives unless it
/// collides into an over-estimate (the sketch is sized so that is rare).
/// Decisions are all-or-nothing per k-mer value — the sketch is not
/// mutated after the filter is built — so surviving k-mer groups reach
/// the sorter intact.
#[derive(Clone, Debug)]
pub struct HighFreqFilter {
    sketch: CountMinSketch,
    threshold: u32,
}

impl HighFreqFilter {
    /// Wrap a fully-populated sketch with a drop threshold.
    pub fn new(sketch: CountMinSketch, threshold: u32) -> Self {
        Self { sketch, threshold }
    }

    /// True when the estimated count of `key` exceeds the threshold.
    #[inline]
    pub fn drops(&self, key: u64) -> bool {
        self.sketch.estimate(key) > u64::from(self.threshold)
    }

    /// The drop threshold (estimated count strictly above this drops).
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// The underlying frozen sketch.
    pub fn sketch(&self) -> &CountMinSketch {
        &self.sketch
    }
}

impl CountMinSketch {
    /// Create a sketch with `depth` rows of `width` counters each.
    /// `width` is rounded up to a power of two for mask indexing.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        assert!(width >= 16 && depth >= 1);
        let width = width.next_power_of_two();
        let salts = (0..depth)
            .map(|i| {
                // SplitMix64 over (seed, i) — odd constants for the
                // multiply-shift family.
                let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) | 1
            })
            .collect();
        Self {
            width,
            rows: vec![vec![0u16; width]; depth],
            salts,
        }
    }

    #[inline]
    fn index(&self, row: usize, item: u64) -> usize {
        let h = item.wrapping_mul(self.salts[row]);
        (h >> (64 - self.width.trailing_zeros())) as usize & (self.width - 1)
    }

    /// Add one occurrence of `item` with conservative update: only the
    /// rows currently holding the minimum are incremented.
    pub fn add(&mut self, item: u64) {
        let est = self.estimate(item);
        for row in 0..self.rows.len() {
            let i = self.index(row, item);
            let c = &mut self.rows[row][i];
            if u64::from(*c) == est {
                *c = c.saturating_add(1);
            }
        }
    }

    /// Estimated count of `item` (never an under-estimate).
    pub fn estimate(&self, item: u64) -> u64 {
        (0..self.rows.len())
            .map(|row| u64::from(self.rows[row][self.index(row, item)]))
            .min()
            .unwrap_or(0)
    }

    /// Counter width per row (after power-of-two rounding).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of hash rows.
    pub fn depth(&self) -> usize {
        self.rows.len()
    }

    /// Fold another sketch into this one, counter-wise, with saturating
    /// addition. Both sketches must share `(width, depth, seed)` — i.e.
    /// the same hash family — otherwise the cell positions of an item
    /// differ between the two matrices and the sum is meaningless.
    ///
    /// Because each per-stream conservative-update cell is `>=` that
    /// stream's true count of every item hashing into it, the summed cell
    /// is `>=` the combined true count: merged estimates still never
    /// under-count. (They can exceed what one conservative sketch fed the
    /// concatenated stream would report — merging forfeits cross-stream
    /// conservative updates — but stay `<=` the plain count-min value.)
    pub fn merge(&mut self, other: &CountMinSketch) {
        assert_eq!(self.width, other.width, "count-min merge: width mismatch");
        assert_eq!(
            self.rows.len(),
            other.rows.len(),
            "count-min merge: depth mismatch"
        );
        assert_eq!(
            self.salts, other.salts,
            "count-min merge: sketches use different hash seeds"
        );
        for (mine, theirs) in self.rows.iter_mut().zip(&other.rows) {
            for (c, &o) in mine.iter_mut().zip(theirs) {
                *c = c.saturating_add(o);
            }
        }
    }

    /// Fraction of non-zero counters, in permille (0..=1000). A fill
    /// ratio near 1000 means the sketch is saturated with distinct items
    /// and over-estimation error grows; callers surface this as a
    /// telemetry counter to size `width` for the workload.
    pub fn fill_ratio_permille(&self) -> u64 {
        let cells = (self.rows.len() * self.width) as u64;
        if cells == 0 {
            return 0;
        }
        let occupied: u64 = self
            .rows
            .iter()
            .map(|r| r.iter().filter(|&&c| c != 0).count() as u64)
            .sum();
        occupied * 1000 / cells
    }

    /// Total memory held by the counters, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.rows.len() * self.width * std::mem::size_of::<u16>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    #[test]
    fn width_rounds_to_power_of_two() {
        let s = CountMinSketch::new(1000, 2, 0);
        assert_eq!(s.width, 1024);
        assert_eq!(s.memory_bytes(), 2 * 1024 * 2);
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let s = CountMinSketch::new(64, 3, 1);
        assert_eq!(s.estimate(42), 0);
    }

    #[test]
    fn single_item_counts_exactly() {
        let mut s = CountMinSketch::new(1024, 3, 2);
        for _ in 0..7 {
            s.add(99);
        }
        assert_eq!(s.estimate(99), 7);
    }

    #[test]
    fn never_undercounts() {
        let mut s = CountMinSketch::new(256, 4, 3);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for _ in 0..2000 {
            let x = rng.gen_range(0..500u64);
            s.add(x);
            *truth.entry(x).or_insert(0) += 1;
        }
        for (&x, &c) in &truth {
            assert!(
                s.estimate(x) >= c,
                "item {x}: est {} < true {c}",
                s.estimate(x)
            );
        }
    }

    #[test]
    fn large_sketch_is_nearly_exact() {
        let mut s = CountMinSketch::new(1 << 16, 4, 5);
        let mut rng = SmallRng::seed_from_u64(6);
        let items: Vec<u64> = (0..300).map(|_| rng.gen()).collect();
        for (i, &x) in items.iter().enumerate() {
            for _ in 0..=(i % 5) {
                s.add(x);
            }
        }
        for (i, &x) in items.iter().enumerate() {
            assert_eq!(s.estimate(x), (i % 5) as u64 + 1, "item {i}");
        }
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut s = CountMinSketch::new(64, 1, 7);
        for _ in 0..70_000 {
            s.add(1);
        }
        assert_eq!(s.estimate(1), u16::MAX as u64);
    }

    #[test]
    fn merge_sums_counts_and_keeps_lower_bound() {
        let mut a = CountMinSketch::new(1024, 3, 9);
        let mut b = CountMinSketch::new(1024, 3, 9);
        for _ in 0..4 {
            a.add(7);
        }
        for _ in 0..5 {
            b.add(7);
        }
        b.add(8);
        a.merge(&b);
        assert_eq!(a.estimate(7), 9);
        assert_eq!(a.estimate(8), 1);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = CountMinSketch::new(64, 1, 10);
        let mut b = CountMinSketch::new(64, 1, 10);
        for _ in 0..40_000 {
            a.add(3);
            b.add(3);
        }
        a.merge(&b);
        assert_eq!(a.estimate(3), u16::MAX as u64);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn merge_rejects_width_mismatch() {
        let mut a = CountMinSketch::new(64, 2, 0);
        let b = CountMinSketch::new(128, 2, 0);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "depth mismatch")]
    fn merge_rejects_depth_mismatch() {
        let mut a = CountMinSketch::new(64, 2, 0);
        let b = CountMinSketch::new(64, 3, 0);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "different hash seeds")]
    fn merge_rejects_seed_mismatch() {
        let mut a = CountMinSketch::new(64, 2, 0);
        let b = CountMinSketch::new(64, 2, 1);
        a.merge(&b);
    }

    #[test]
    fn sketch_params_build_matching_mergeable_sketches() {
        let p = SketchParams {
            width: 100,
            depth: 2,
            seed: 13,
        };
        let mut a = p.build();
        let mut b = p.build();
        assert_eq!(a.width(), 128);
        a.add(5);
        b.add(5);
        a.merge(&b); // same params -> same hash family -> merge is legal
        assert_eq!(a.estimate(5), 2);
    }

    #[test]
    fn high_freq_filter_drops_strictly_above_threshold() {
        let mut s = CountMinSketch::new(1 << 12, 4, 14);
        for _ in 0..3 {
            s.add(10);
        }
        for _ in 0..4 {
            s.add(11);
        }
        let f = HighFreqFilter::new(s, 3);
        assert!(!f.drops(10), "count == threshold survives");
        assert!(f.drops(11), "count > threshold drops");
        assert!(!f.drops(12), "unseen key survives");
        assert_eq!(f.threshold(), 3);
    }

    #[test]
    fn high_freq_filter_never_passes_a_truly_frequent_kmer() {
        // Estimates never under-count, so true > threshold implies
        // estimate > threshold: no false negatives, ever.
        let mut s = CountMinSketch::new(64, 2, 15);
        let mut rng = SmallRng::seed_from_u64(16);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for _ in 0..3000 {
            let x = rng.gen_range(0..200u64);
            s.add(x);
            *truth.entry(x).or_insert(0) += 1;
        }
        let tau = 12u32;
        let f = HighFreqFilter::new(s, tau);
        for (&x, &c) in &truth {
            if c > u64::from(tau) {
                assert!(f.drops(x), "item {x} with true count {c} survived");
            }
        }
    }

    #[test]
    fn fill_ratio_tracks_occupancy() {
        let mut s = CountMinSketch::new(16, 1, 11);
        assert_eq!(s.fill_ratio_permille(), 0);
        s.add(1);
        // One row of 16 cells, one occupied -> 62 permille.
        assert_eq!(s.fill_ratio_permille(), 1000 / 16);
        for x in 0..1000u64 {
            s.add(x);
        }
        assert_eq!(s.fill_ratio_permille(), 1000);
    }

    /// Plain (non-conservative) count-min insert: every row increments.
    /// The classic upper bound merge() is compared against.
    fn plain_add(s: &mut CountMinSketch, item: u64) {
        for row in 0..s.rows.len() {
            let i = s.index(row, item);
            s.rows[row][i] = s.rows[row][i].saturating_add(1);
        }
    }

    proptest! {
        #[test]
        fn prop_estimate_at_least_truth(
            adds in proptest::collection::vec(0u64..64, 0..500),
        ) {
            let mut s = CountMinSketch::new(128, 3, 8);
            let mut truth = HashMap::new();
            for &x in &adds {
                s.add(x);
                *truth.entry(x).or_insert(0u64) += 1;
            }
            for (&x, &c) in &truth {
                prop_assert!(s.estimate(x) >= c);
            }
        }

        /// Merge-equivalence vs a single sketch: split a random stream at
        /// a random point, sketch each half independently, merge. For
        /// every item the merged estimate is sandwiched between the true
        /// combined count (conservative cells never under-count their
        /// items) and the plain count-min estimate over the concatenated
        /// stream (merged cells are counter-wise <= the plain cells).
        #[test]
        fn prop_merge_equivalent_to_single_sketch(
            adds in proptest::collection::vec(0u64..48, 1..400),
            cut_pct in 0usize..101,
        ) {
            let cut = adds.len() * cut_pct / 100;
            let (left, right) = adds.split_at(cut.min(adds.len()));
            let mut a = CountMinSketch::new(64, 3, 12);
            let mut b = CountMinSketch::new(64, 3, 12);
            let mut plain = CountMinSketch::new(64, 3, 12);
            let mut truth = HashMap::new();
            for &x in left {
                a.add(x);
            }
            for &x in right {
                b.add(x);
            }
            for &x in &adds {
                plain_add(&mut plain, x);
                *truth.entry(x).or_insert(0u64) += 1;
            }
            a.merge(&b);
            for (&x, &c) in &truth {
                let merged = a.estimate(x);
                prop_assert!(merged >= c, "item {x}: merged {merged} < true {c}");
                prop_assert!(
                    merged <= plain.estimate(x),
                    "item {x}: merged {merged} > plain {}",
                    plain.estimate(x)
                );
            }
        }
    }
}
