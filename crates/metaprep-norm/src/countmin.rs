//! Count-min sketch over k-mer values.
//!
//! A `d x w` matrix of saturating `u16` counters with `d` pairwise
//! independent multiply-shift hashes. Estimates never under-count
//! (conservative update keeps over-counting small), which is the right
//! bias for digital normalization: over-estimating abundance only makes
//! the filter drop a redundant read slightly early.

/// Count-min sketch for `u64`-packed k-mers.
#[derive(Clone, Debug)]
pub struct CountMinSketch {
    width: usize,
    rows: Vec<Vec<u16>>,
    salts: Vec<u64>,
}

impl CountMinSketch {
    /// Create a sketch with `depth` rows of `width` counters each.
    /// `width` is rounded up to a power of two for mask indexing.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        assert!(width >= 16 && depth >= 1);
        let width = width.next_power_of_two();
        let salts = (0..depth)
            .map(|i| {
                // SplitMix64 over (seed, i) — odd constants for the
                // multiply-shift family.
                let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) | 1
            })
            .collect();
        Self {
            width,
            rows: vec![vec![0u16; width]; depth],
            salts,
        }
    }

    #[inline]
    fn index(&self, row: usize, item: u64) -> usize {
        let h = item.wrapping_mul(self.salts[row]);
        (h >> (64 - self.width.trailing_zeros())) as usize & (self.width - 1)
    }

    /// Add one occurrence of `item` with conservative update: only the
    /// rows currently holding the minimum are incremented.
    pub fn add(&mut self, item: u64) {
        let est = self.estimate(item);
        for row in 0..self.rows.len() {
            let i = self.index(row, item);
            let c = &mut self.rows[row][i];
            if u64::from(*c) == est {
                *c = c.saturating_add(1);
            }
        }
    }

    /// Estimated count of `item` (never an under-estimate).
    pub fn estimate(&self, item: u64) -> u64 {
        (0..self.rows.len())
            .map(|row| u64::from(self.rows[row][self.index(row, item)]))
            .min()
            .unwrap_or(0)
    }

    /// Total memory held by the counters, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.rows.len() * self.width * std::mem::size_of::<u16>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    #[test]
    fn width_rounds_to_power_of_two() {
        let s = CountMinSketch::new(1000, 2, 0);
        assert_eq!(s.width, 1024);
        assert_eq!(s.memory_bytes(), 2 * 1024 * 2);
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let s = CountMinSketch::new(64, 3, 1);
        assert_eq!(s.estimate(42), 0);
    }

    #[test]
    fn single_item_counts_exactly() {
        let mut s = CountMinSketch::new(1024, 3, 2);
        for _ in 0..7 {
            s.add(99);
        }
        assert_eq!(s.estimate(99), 7);
    }

    #[test]
    fn never_undercounts() {
        let mut s = CountMinSketch::new(256, 4, 3);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for _ in 0..2000 {
            let x = rng.gen_range(0..500u64);
            s.add(x);
            *truth.entry(x).or_insert(0) += 1;
        }
        for (&x, &c) in &truth {
            assert!(
                s.estimate(x) >= c,
                "item {x}: est {} < true {c}",
                s.estimate(x)
            );
        }
    }

    #[test]
    fn large_sketch_is_nearly_exact() {
        let mut s = CountMinSketch::new(1 << 16, 4, 5);
        let mut rng = SmallRng::seed_from_u64(6);
        let items: Vec<u64> = (0..300).map(|_| rng.gen()).collect();
        for (i, &x) in items.iter().enumerate() {
            for _ in 0..=(i % 5) {
                s.add(x);
            }
        }
        for (i, &x) in items.iter().enumerate() {
            assert_eq!(s.estimate(x), (i % 5) as u64 + 1, "item {i}");
        }
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut s = CountMinSketch::new(64, 1, 7);
        for _ in 0..70_000 {
            s.add(1);
        }
        assert_eq!(s.estimate(1), u16::MAX as u64);
    }

    proptest! {
        #[test]
        fn prop_estimate_at_least_truth(
            adds in proptest::collection::vec(0u64..64, 0..500),
        ) {
            let mut s = CountMinSketch::new(128, 3, 8);
            let mut truth = HashMap::new();
            for &x in &adds {
                s.add(x);
                *truth.entry(x).or_insert(0u64) += 1;
            }
            for (&x, &c) in &truth {
                prop_assert!(s.estimate(x) >= c);
            }
        }
    }
}
