//! Digital normalization — the *other* preprocessing strategy of Howe et
//! al. (paper §2, citing Pell et al.'s probabilistic de Bruijn graphs).
//!
//! Digital normalization streams the reads once and drops any read whose
//! estimated median k-mer abundance already exceeds a target coverage
//! `C`: redundant deep-coverage data is discarded before assembly while
//! low-coverage reads are kept verbatim. Abundances are estimated with a
//! [count-min sketch](countmin) so memory stays fixed regardless of
//! dataset size — the same trick khmer uses.
//!
//! METAPREP's paper applies only the *partitioning* strategy, but names
//! normalization as the companion step; this crate completes the pair so
//! the two can be composed (normalize, then partition).

pub mod countmin;
pub mod normalize;

pub use countmin::{CountMinSketch, HighFreqFilter, SketchParams};
pub use normalize::{normalize, NormalizeConfig, NormalizeResult};
