//! The digital normalization pass.

use crate::countmin::CountMinSketch;
use metaprep_io::ReadStore;
use metaprep_kmer::{for_each_canonical_kmer, Kmer64};

/// Normalization parameters.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct NormalizeConfig {
    /// k-mer length for abundance estimation (`<= 32`; khmer uses 20).
    pub k: usize,
    /// Target coverage: a fragment whose median k-mer abundance is already
    /// `>= target` is dropped.
    pub target: u64,
    /// Count-min sketch width (counters per row; rounded up to a power of
    /// two).
    pub sketch_width: usize,
    /// Count-min sketch depth (rows).
    pub sketch_depth: usize,
    /// Sketch hash seed.
    pub seed: u64,
}

impl Default for NormalizeConfig {
    fn default() -> Self {
        Self {
            k: 20,
            target: 20,
            sketch_width: 1 << 22,
            sketch_depth: 4,
            seed: 0xD16E57,
        }
    }
}

/// Output of [`normalize`].
#[derive(Clone, Debug)]
pub struct NormalizeResult {
    /// The kept reads (fragment ids renumbered densely, pairing intact).
    pub reads: ReadStore,
    /// Fragments kept.
    pub kept: u64,
    /// Fragments dropped as redundant.
    pub dropped: u64,
    /// Sketch memory used, in bytes.
    pub sketch_bytes: usize,
}

impl NormalizeResult {
    /// Fraction of fragments kept.
    pub fn keep_fraction(&self) -> f64 {
        let total = self.kept + self.dropped;
        if total == 0 {
            0.0
        } else {
            self.kept as f64 / total as f64
        }
    }
}

/// Median of a small unsorted vector (by sorting in place).
fn median(xs: &mut [u64]) -> u64 {
    if xs.is_empty() {
        return 0;
    }
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// Stream the fragments of `reads` and keep each one whose *median* k-mer
/// abundance (estimated against the reads kept so far) is below
/// `cfg.target`. Kept fragments update the sketch; dropped ones do not.
///
/// Order-dependent by design, exactly like khmer's `normalize-by-median`:
/// earlier reads of a deep region are kept, later ones dropped.
pub fn normalize(reads: &ReadStore, cfg: NormalizeConfig) -> NormalizeResult {
    assert!(cfg.k >= 1 && cfg.k <= 32);
    assert!(cfg.target >= 1);
    let mut sketch = CountMinSketch::new(cfg.sketch_width, cfg.sketch_depth, cfg.seed);
    let sketch_bytes = sketch.memory_bytes();

    // Group sequences by fragment: both mates decide (and are kept or
    // dropped) together, preserving pairing.
    let n = reads.len();
    let mut kept_store = ReadStore::new();
    let mut kept = 0u64;
    let mut dropped = 0u64;

    let mut i = 0usize;
    let mut abund: Vec<u64> = Vec::new();
    let mut kmers: Vec<u64> = Vec::new();
    while i < n {
        let frag = reads.frag_id(i);
        let mut j = i + 1;
        while j < n && reads.frag_id(j) == frag {
            j += 1;
        }

        // Collect the fragment's k-mers and their estimated abundances.
        abund.clear();
        kmers.clear();
        for s in i..j {
            for_each_canonical_kmer::<Kmer64>(reads.seq(s), cfg.k, |v, _| kmers.push(v));
        }
        for &v in &kmers {
            abund.push(sketch.estimate(v));
        }

        if kmers.is_empty() || median(&mut abund) < cfg.target {
            // Keep: copy the sequences and teach the sketch.
            let new_frag = kept_store.num_fragments();
            for s in i..j {
                kept_store.push_with_frag(reads.seq(s), new_frag);
                if let Some(name) = reads.name(s) {
                    kept_store.set_last_name(name);
                }
                if let Some(q) = reads.qual(s) {
                    kept_store.set_last_qual(q);
                }
            }
            for &v in &kmers {
                sketch.add(v);
            }
            kept += 1;
        } else {
            dropped += 1;
        }
        i = j;
    }

    NormalizeResult {
        reads: kept_store,
        kept,
        dropped,
        sketch_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaprep_synth::{simulate_community, CommunityProfile};

    fn cfg(target: u64) -> NormalizeConfig {
        NormalizeConfig {
            k: 15,
            target,
            sketch_width: 1 << 16,
            sketch_depth: 4,
            seed: 1,
        }
    }

    #[test]
    fn unique_reads_all_kept() {
        let mut p = CommunityProfile::quickstart();
        p.read_pairs = 200;
        p.species = 50; // very low coverage: nothing is redundant
        p.genome_len = (20_000, 30_000);
        let data = simulate_community(&p, 1);
        let res = normalize(&data.reads, cfg(5));
        assert_eq!(res.dropped, 0);
        assert_eq!(res.kept, 200);
        assert_eq!(res.reads.len(), data.reads.len());
    }

    #[test]
    fn duplicate_reads_get_dropped() {
        // A non-periodic read, duplicated: each of its k-mers occurs once
        // per copy, so the median abundance rises by one per kept copy.
        let mut reads = ReadStore::new();
        let mut x = 9u64;
        let seq: Vec<u8> = (0..60)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(3);
                b"ACGT"[(x >> 61) as usize & 3]
            })
            .collect();
        for _ in 0..20 {
            reads.push_single(&seq);
        }
        let res = normalize(&reads, cfg(5));
        // First 5 copies raise the median to the target; the rest drop.
        assert_eq!(res.kept, 5);
        assert_eq!(res.dropped, 15);
    }

    #[test]
    fn pairing_survives_normalization() {
        let mut p = CommunityProfile::quickstart();
        p.read_pairs = 300;
        let data = simulate_community(&p, 2);
        let res = normalize(&data.reads, cfg(3));
        // Every kept fragment still has exactly two mates.
        assert_eq!(res.reads.len() as u64, 2 * res.kept);
        for f in 0..res.reads.num_fragments() {
            let members: Vec<usize> = (0..res.reads.len())
                .filter(|&i| res.reads.frag_id(i) == f)
                .collect();
            assert_eq!(members.len(), 2, "fragment {f}");
        }
    }

    #[test]
    fn deep_coverage_is_flattened() {
        // Deep single-genome coverage: normalization keeps roughly
        // target/coverage of the reads.
        let mut p = CommunityProfile::quickstart();
        p.species = 1;
        p.genome_len = (5_000, 5_001);
        p.read_pairs = 2_000; // ~80x coverage
        p.error_rate = 0.0;
        p.n_rate = 0.0;
        let data = simulate_community(&p, 3);
        let res = normalize(&data.reads, cfg(10));
        let frac = res.keep_fraction();
        assert!(frac < 0.5, "kept {frac}");
        assert!(res.kept > 100, "kept {}", res.kept);
    }

    #[test]
    fn empty_input() {
        let res = normalize(&ReadStore::new(), cfg(5));
        assert_eq!(res.kept, 0);
        assert_eq!(res.dropped, 0);
        assert_eq!(res.keep_fraction(), 0.0);
    }

    #[test]
    fn target_one_keeps_only_novel_reads() {
        let mut reads = ReadStore::new();
        let a: Vec<u8> = b"ACGTTGCA".iter().cycle().take(50).copied().collect();
        let b: Vec<u8> = b"GGATCCAA".iter().cycle().take(50).copied().collect();
        reads.push_single(&a);
        reads.push_single(&a); // duplicate -> dropped at target 1
        reads.push_single(&b); // novel -> kept
        let res = normalize(&reads, cfg(1));
        assert_eq!(res.kept, 2);
        assert_eq!(res.dropped, 1);
    }

    #[test]
    fn normalization_preserves_assembly_content() {
        // After normalization, the distinct solid k-mers of a deeply
        // covered genome are still (almost all) present.
        use metaprep_kmer::for_each_canonical_kmer;
        use std::collections::HashSet;
        let mut p = CommunityProfile::quickstart();
        p.species = 1;
        p.genome_len = (4_000, 4_001);
        p.read_pairs = 1_000;
        p.error_rate = 0.0;
        p.n_rate = 0.0;
        let data = simulate_community(&p, 4);
        let res = normalize(&data.reads, cfg(10));

        let kmers_of = |store: &ReadStore| {
            let mut set = HashSet::new();
            for (seq, _) in store.iter() {
                for_each_canonical_kmer::<Kmer64>(seq, 15, |v, _| {
                    set.insert(v);
                });
            }
            set
        };
        let before = kmers_of(&data.reads);
        let after = kmers_of(&res.reads);
        let retained = after.len() as f64 / before.len() as f64;
        assert!(retained > 0.95, "retained {retained}");
    }
}
