//! Read trimming: quality clipping and adapter removal.
//!
//! The paper's chunker handles "paired-end FASTQ files containing trimmed
//! reads" (§4.3) — reads of uneven length produced by exactly these
//! operations. This module provides the two standard ones:
//!
//! * [`trim_quality`] — clip the 3' end at the point that maximizes the
//!   partial sum of `(qual - threshold)` (the BWA/cutadapt algorithm);
//! * [`trim_adapter`] — remove a 3' adapter by longest suffix-prefix
//!   overlap.
//!
//! Both preserve pairing: if any mate of a fragment falls below the
//! minimum length, the whole fragment is dropped.

use crate::store::ReadStore;

/// Counters from a trimming pass.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TrimStats {
    /// Fragments kept.
    pub kept_fragments: u64,
    /// Fragments dropped (a mate became shorter than the minimum).
    pub dropped_fragments: u64,
    /// Total bases removed from kept reads.
    pub bases_trimmed: u64,
}

/// 3' cut position by the maximum-partial-sum rule: scanning from the 3'
/// end, keep the prefix `[0, argmax)` where `argmax` maximizes
/// `sum(threshold - qual[i])` over the trimmed suffix — equivalently the
/// standard BWA `-q` algorithm.
fn quality_cutoff(qual: &[u8], threshold: u8) -> usize {
    let mut best_pos = qual.len();
    let mut best_sum = 0i64;
    let mut sum = 0i64;
    for i in (0..qual.len()).rev() {
        sum += threshold as i64 - qual[i] as i64;
        if sum > best_sum {
            best_sum = sum;
            best_pos = i;
        }
    }
    best_pos
}

/// Quality-trim every read's 3' end. `threshold` is an ASCII quality byte
/// (Phred+33: `b'#'` is Q2, `b'5'` is Q20). Reads without stored
/// qualities are left untouched. Fragments with any mate shorter than
/// `min_len` after trimming are dropped entirely.
pub fn trim_quality(store: &ReadStore, threshold: u8, min_len: usize) -> (ReadStore, TrimStats) {
    rebuild(store, min_len, |seq, qual| match qual {
        Some(q) => quality_cutoff(q, threshold).min(seq.len()),
        None => seq.len(),
    })
}

/// Longest `overlap >= min_overlap` such that the read's suffix equals the
/// adapter's prefix; returns the cut position (`seq.len()` = no cut).
fn adapter_cutoff(seq: &[u8], adapter: &[u8], min_overlap: usize) -> usize {
    let max_ov = adapter.len().min(seq.len());
    for ov in (min_overlap..=max_ov).rev() {
        if seq[seq.len() - ov..] == adapter[..ov] {
            return seq.len() - ov;
        }
    }
    seq.len()
}

/// Remove a 3' adapter from every read (suffix of the read matching a
/// prefix of `adapter`, at least `min_overlap` bases). Fragments with any
/// mate shorter than `min_len` afterwards are dropped.
pub fn trim_adapter(
    store: &ReadStore,
    adapter: &[u8],
    min_overlap: usize,
    min_len: usize,
) -> (ReadStore, TrimStats) {
    assert!(min_overlap >= 1 && min_overlap <= adapter.len());
    rebuild(store, min_len, |seq, _| {
        adapter_cutoff(seq, adapter, min_overlap)
    })
}

/// Shared fragment-wise rebuild: compute each sequence's cut, drop whole
/// fragments whose any mate is too short, copy the rest.
fn rebuild(
    store: &ReadStore,
    min_len: usize,
    cut: impl Fn(&[u8], Option<&[u8]>) -> usize,
) -> (ReadStore, TrimStats) {
    let n = store.len();
    let mut out = ReadStore::new();
    let mut stats = TrimStats::default();
    let mut i = 0usize;
    while i < n {
        let frag = store.frag_id(i);
        let mut j = i + 1;
        while j < n && store.frag_id(j) == frag {
            j += 1;
        }
        let cuts: Vec<usize> = (i..j).map(|s| cut(store.seq(s), store.qual(s))).collect();
        if cuts.iter().any(|&c| c < min_len) {
            stats.dropped_fragments += 1;
        } else {
            let new_frag = out.num_fragments();
            for (s, &c) in (i..j).zip(&cuts) {
                stats.bases_trimmed += (store.seq(s).len() - c) as u64;
                out.push_with_frag(&store.seq(s)[..c], new_frag);
                if let Some(name) = store.name(s) {
                    out.set_last_name(name);
                }
                if let Some(q) = store.qual(s) {
                    out.set_last_qual(&q[..c]);
                }
            }
            stats.kept_fragments += 1;
        }
        i = j;
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_quals(items: &[(&[u8], &[u8])]) -> ReadStore {
        let mut s = ReadStore::new();
        for (seq, qual) in items {
            s.push_single(seq);
            s.set_last_qual(qual);
        }
        s
    }

    #[test]
    fn quality_cutoff_clean_read_keeps_everything() {
        assert_eq!(quality_cutoff(b"IIIII", b'5'), 5);
    }

    #[test]
    fn quality_cutoff_bad_tail_is_cut() {
        // Good (I = Q40) then bad (# = Q2) under threshold '5' (Q20).
        assert_eq!(quality_cutoff(b"IIII####", b'5'), 4);
    }

    #[test]
    fn quality_cutoff_all_bad_cuts_everything() {
        assert_eq!(quality_cutoff(b"####", b'5'), 0);
    }

    #[test]
    fn quality_cutoff_recovers_after_dip() {
        // A short dip followed by strong quality should not trigger a cut
        // before the dip (partial-sum rule, unlike naive first-bad-base).
        assert_eq!(quality_cutoff(b"III#IIIIII", b'5'), 10);
    }

    #[test]
    fn trim_quality_trims_and_keeps_pairs() {
        let mut s = ReadStore::new();
        s.push_pair(b"ACGTACGT", b"GGCCGGCC");
        // qualities must be set per push; rebuild manually
        let mut s2 = ReadStore::new();
        s2.push_with_frag(b"ACGTACGT", 0);
        s2.set_last_qual(b"IIII####");
        s2.push_with_frag(b"GGCCGGCC", 0);
        s2.set_last_qual(b"IIIIIIII");
        let (out, stats) = trim_quality(&s2, b'5', 3);
        assert_eq!(out.len(), 2);
        assert_eq!(out.seq(0), b"ACGT");
        assert_eq!(out.seq(1), b"GGCCGGCC");
        assert_eq!(out.qual(0), Some(&b"IIII"[..]));
        assert_eq!(stats.kept_fragments, 1);
        assert_eq!(stats.bases_trimmed, 4);
        let _ = s;
    }

    #[test]
    fn trim_quality_drops_fragment_when_mate_too_short() {
        let mut s = ReadStore::new();
        s.push_with_frag(b"ACGTACGT", 0);
        s.set_last_qual(b"########"); // fully trimmed
        s.push_with_frag(b"GGCCGGCC", 0);
        s.set_last_qual(b"IIIIIIII");
        let (out, stats) = trim_quality(&s, b'5', 4);
        assert!(out.is_empty());
        assert_eq!(stats.dropped_fragments, 1);
    }

    #[test]
    fn trim_quality_without_quals_is_identity() {
        let mut s = ReadStore::new();
        s.push_single(b"ACGT");
        let (out, stats) = trim_quality(&s, b'5', 2);
        assert_eq!(out.seq(0), b"ACGT");
        assert_eq!(stats.bases_trimmed, 0);
    }

    #[test]
    fn adapter_full_match_removed() {
        let s = store_with_quals(&[(b"ACGTACGTAGATCGGA", b"IIIIIIIIIIIIIIII")]);
        let (out, stats) = trim_adapter(&s, b"AGATCGGA", 4, 4);
        assert_eq!(out.seq(0), b"ACGTACGT");
        assert_eq!(stats.bases_trimmed, 8);
        // qualities trimmed in step
        assert_eq!(out.qual(0).unwrap().len(), 8);
    }

    #[test]
    fn adapter_partial_suffix_overlap_removed() {
        // Only the first 5 bases of the adapter fit at the read end.
        let s = store_with_quals(&[(b"ACGTACGTAGATC", b"IIIIIIIIIIIII")]);
        let (out, _) = trim_adapter(&s, b"AGATCGGA", 4, 4);
        assert_eq!(out.seq(0), b"ACGTACGT");
    }

    #[test]
    fn adapter_below_min_overlap_kept() {
        // Suffix "AGA" (3 bases) < min_overlap 4 -> untouched.
        let s = store_with_quals(&[(b"ACGTACGTAGA", b"IIIIIIIIIII")]);
        let (out, stats) = trim_adapter(&s, b"AGATCGGA", 4, 4);
        assert_eq!(out.seq(0), b"ACGTACGTAGA");
        assert_eq!(stats.bases_trimmed, 0);
    }

    #[test]
    fn adapter_no_match_untouched() {
        let s = store_with_quals(&[(b"ACGTACGT", b"IIIIIIII")]);
        let (out, _) = trim_adapter(&s, b"TTTTTTTT", 4, 4);
        assert_eq!(out.seq(0), b"ACGTACGT");
    }

    #[test]
    fn empty_store() {
        let (out, stats) = trim_quality(&ReadStore::new(), b'5', 10);
        assert!(out.is_empty());
        assert_eq!(stats, TrimStats::default());
    }
}
