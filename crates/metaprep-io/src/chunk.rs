//! Logical FASTQ chunking (the `FASTQPart` prerequisite, paper §3.1.2).
//!
//! A FASTQ file is split into `C` byte ranges of approximately equal size
//! whose boundaries land on record starts, so each chunk can be read
//! independently. Every chunk records the global read id of its first read,
//! which is what lets threads assign dense fragment ids without
//! coordination.
//!
//! Two forms are provided:
//!
//! * [`chunk_fastq_bytes`] — operates on raw FASTQ bytes, locating record
//!   boundaries with [`find_record_start`] exactly as a file-based tool
//!   must;
//! * [`chunk_store`] — operates on an in-memory [`ReadStore`] using modeled
//!   record sizes, producing the same `ChunkSpec` shape for the in-memory
//!   pipeline.

use crate::parse::FastqError;
use crate::store::ReadStore;

/// One logical chunk of a FASTQ input (a row of the `FASTQPart` table minus
/// its m-mer histogram, which lives in `metaprep-index`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ChunkSpec {
    /// Byte offset of the chunk within the file (or modeled stream).
    pub offset: u64,
    /// Size of the chunk in bytes.
    pub bytes: u64,
    /// Global id of the first *sequence* in the chunk (sequence index, not
    /// fragment id; mates are consecutive sequences).
    pub first_seq: u32,
    /// Number of sequences in the chunk.
    pub seqs: u32,
}

/// Find the first FASTQ record start at or after `pos` in `data`.
///
/// A record start is a line beginning with `@` whose line-after-next begins
/// with `+`. Quality lines may begin with `@`, but then the line two below
/// is a sequence line (`A/C/G/T/N...`), never `+` — so the test is
/// unambiguous for 4-line FASTQ.
pub fn find_record_start(data: &[u8], pos: usize) -> Option<usize> {
    if pos >= data.len() {
        return None;
    }
    // Move to a line start.
    let mut at = if pos == 0 {
        0
    } else {
        memchr_from(data, pos - 1, b'\n')? + 1
    };
    loop {
        if at >= data.len() {
            return None;
        }
        if data[at] == b'@' {
            // line+2 must start with '+'
            let l1 = memchr_from(data, at, b'\n')? + 1;
            let l2 = memchr_from(data, l1, b'\n')? + 1;
            if l2 < data.len() && data[l2] == b'+' {
                return Some(at);
            }
        }
        at = memchr_from(data, at, b'\n')? + 1;
    }
}

/// Index of the first `needle` at or after `from`. Dispatches to the
/// vectorized byte scanner (AVX2/NEON, scalar fallback) — newline hunting
/// is the inner loop of every record-boundary probe, so this is the
/// memchr of the FASTQ scanning hot path.
fn memchr_from(data: &[u8], from: usize, needle: u8) -> Option<usize> {
    metaprep_kmer::simd::find_byte(data.get(from..)?, needle).map(|i| from + i)
}

/// Split raw FASTQ bytes into up to `c` chunks of roughly equal byte size
/// with boundaries on record starts. Fewer than `c` chunks are returned when
/// the file has fewer records than `c`. Errors if the input is not strict
/// 4-line FASTQ (blank lines, wrapped records, truncation) — counting such
/// input would silently shift every downstream `first_seq`.
pub fn chunk_fastq_bytes(data: &[u8], c: usize) -> Result<Vec<ChunkSpec>, FastqError> {
    assert!(c >= 1);
    let mut boundaries = vec![0usize];
    let target = data.len() / c;
    for i in 1..c {
        let want = i * target;
        match find_record_start(data, want) {
            // EXPECT: `boundaries` is seeded with 0 above and only ever pushed to.
            Some(s) if s > *boundaries.last().expect("nonempty") => boundaries.push(s),
            _ => {}
        }
    }
    boundaries.push(data.len());

    let mut specs = Vec::with_capacity(boundaries.len() - 1);
    let mut seq_id = 0u32;
    for w in boundaries.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if lo == hi {
            continue;
        }
        let n = count_records(&data[lo..hi]).map_err(|e| offset_record(e, seq_id as usize))?;
        specs.push(ChunkSpec {
            offset: lo as u64,
            bytes: (hi - lo) as u64,
            first_seq: seq_id,
            seqs: n,
        });
        seq_id += n;
    }
    Ok(specs)
}

/// Shift a [`FastqError::Malformed`] record index by `by` so errors from a
/// per-chunk scan report file-global record numbers.
fn offset_record(e: FastqError, by: usize) -> FastqError {
    match e {
        FastqError::Malformed { record, what } => FastqError::Malformed {
            record: record + by,
            what,
        },
        other => other,
    }
}

/// Byte offsets of every record start in `data`.
fn record_starts(data: &[u8]) -> Vec<usize> {
    let mut starts = Vec::new();
    let mut at = 0usize;
    while let Some(s) = find_record_start(data, at) {
        starts.push(s);
        at = s + 1;
    }
    starts
}

/// Number of record starts in `data` — the length [`record_starts`] would
/// return, computed without storing the positions. The streaming chunker
/// uses this to count records per byte range in O(1) memory.
pub fn count_record_starts(data: &[u8]) -> u64 {
    let mut count = 0u64;
    let mut at = 0usize;
    while let Some(s) = find_record_start(data, at) {
        count += 1;
        at = s + 1;
    }
    count
}

/// Split raw *interleaved paired-end* FASTQ bytes into up to `c` chunks of
/// roughly equal byte size whose boundaries fall on even record indices —
/// every chunk holds whole mate pairs. The paper's chunker does the same
/// alignment work for paired inputs ("after finding the chunk offset in
/// one FASTQ file, the same read has to be located in the other", §4.3;
/// with interleaving the constraint becomes even-index boundaries).
///
/// Errors if the file holds an odd number of records (mates cannot be
/// interleaved).
pub fn chunk_fastq_bytes_paired(data: &[u8], c: usize) -> Result<Vec<ChunkSpec>, FastqError> {
    assert!(c >= 1);
    let starts = record_starts(data);
    let n = starts.len();
    if !n.is_multiple_of(2) {
        return Err(FastqError::Malformed {
            record: n,
            what: "paired FASTQ must hold an even record count".into(),
        });
    }
    if n == 0 {
        return Ok(Vec::new());
    }

    // Candidate boundaries: even record indices; pick the first candidate
    // at or after each byte target.
    let mut bounds: Vec<usize> = vec![0]; // record indices
    for j in 1..c {
        let target = j * data.len() / c;
        let mut idx = starts.partition_point(|&s| s < target);
        idx += idx % 2; // round up to even
        let idx = idx.min(n);
        // EXPECT: `bounds` is seeded with 0 above and only ever pushed to.
        if idx > *bounds.last().expect("nonempty") {
            bounds.push(idx);
        }
    }
    bounds.push(n);

    Ok(bounds
        .windows(2)
        .filter(|w| w[0] < w[1])
        .map(|w| {
            let lo_byte = starts[w[0]];
            let hi_byte = if w[1] == n { data.len() } else { starts[w[1]] };
            ChunkSpec {
                offset: lo_byte as u64,
                bytes: (hi_byte - lo_byte) as u64,
                first_seq: w[0] as u32,
                seqs: (w[1] - w[0]) as u32,
            }
        })
        .collect())
}

/// Count and validate the FASTQ records in a byte slice that starts at a
/// record boundary. The slice must be strict 4-line FASTQ: blank lines
/// (including trailing ones), wrapped multi-line records, and truncated
/// records are rejected — the old `lines / 4` count silently miscounted
/// them, shifting every downstream `first_seq`.
pub fn count_records(data: &[u8]) -> Result<u32, FastqError> {
    let mut records = 0u32;
    let mut line_in_record = 0u8; // 0 header, 1 seq, 2 plus, 3 qual
    let mut at = 0usize;
    while at < data.len() {
        let end = memchr_from(data, at, b'\n').unwrap_or(data.len());
        let mut line = &data[at..end];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        let record = records as usize + 1;
        match line_in_record {
            0 if line.is_empty() => {
                return Err(FastqError::Malformed {
                    record,
                    what: "blank line between records (strict 4-line FASTQ required)".into(),
                });
            }
            0 if line[0] != b'@' => {
                return Err(FastqError::Malformed {
                    record,
                    what: format!(
                        "header must start with '@', got {:?} (wrapped multi-line \
                         records are not supported)",
                        line[0] as char
                    ),
                });
            }
            2 if line.first() != Some(&b'+') => {
                return Err(FastqError::Malformed {
                    record,
                    what: "third line must start with '+' (wrapped multi-line records \
                           are not supported)"
                        .into(),
                });
            }
            _ => {}
        }
        line_in_record += 1;
        if line_in_record == 4 {
            line_in_record = 0;
            records = records
                .checked_add(1)
                .ok_or_else(|| FastqError::Malformed {
                    record,
                    what: "more than u32::MAX records in one chunk".into(),
                })?;
        }
        at = end + 1;
    }
    if line_in_record != 0 {
        return Err(FastqError::Malformed {
            record: records as usize + 1,
            what: format!("truncated record ({line_in_record} of 4 lines)"),
        });
    }
    Ok(records)
}

/// Chunk an in-memory store into up to `c` chunks of roughly equal *modeled*
/// byte size (using [`ReadStore::record_bytes`]). Mates of one fragment are
/// never split across chunks, mirroring how the file-based chunker keeps
/// whole records together and the paper keeps paired files aligned.
pub fn chunk_store(store: &ReadStore, c: usize) -> Vec<ChunkSpec> {
    assert!(c >= 1);
    let n = store.len();
    if n == 0 {
        return Vec::new();
    }
    let total: u64 = (0..n).map(|i| store.record_bytes(i) as u64).sum();
    let target = (total / c as u64).max(1);

    let mut specs = Vec::with_capacity(c);
    let mut start = 0usize;
    let mut acc = 0u64;
    let mut offset = 0u64;
    for i in 0..n {
        acc += store.record_bytes(i) as u64;
        let next_is_same_frag = i + 1 < n && store.frag_id(i + 1) == store.frag_id(i);
        if acc >= target && !next_is_same_frag && specs.len() + 1 < c {
            specs.push(ChunkSpec {
                offset,
                bytes: acc,
                first_seq: start as u32,
                seqs: (i + 1 - start) as u32,
            });
            offset += acc;
            start = i + 1;
            acc = 0;
        }
    }
    if start < n {
        specs.push(ChunkSpec {
            offset,
            bytes: acc,
            first_seq: start as u32,
            seqs: (n - start) as u32,
        });
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::write::write_fastq;

    fn sample_bytes(n: usize) -> Vec<u8> {
        let mut s = ReadStore::new();
        for i in 0..n {
            let seq: Vec<u8> = b"ACGT"
                .iter()
                .cycle()
                .take(20 + (i % 7) * 3)
                .copied()
                .collect();
            s.push_single(&seq);
        }
        let mut buf = Vec::new();
        write_fastq(&mut buf, &s).unwrap();
        buf
    }

    #[test]
    fn find_record_start_at_zero() {
        let data = sample_bytes(3);
        assert_eq!(find_record_start(&data, 0), Some(0));
    }

    #[test]
    fn find_record_start_skips_mid_record() {
        let data = sample_bytes(3);
        // From byte 1 we must land on the second record, not inside the first.
        let s = find_record_start(&data, 1).unwrap();
        assert!(s > 0);
        assert_eq!(data[s], b'@');
        // It must be a real record start: parse from here succeeds.
        let store = crate::parse::parse_fastq(&data[s..], false).unwrap();
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn find_record_start_handles_qual_at_sign() {
        // Quality line starting with '@' must not be taken for a header.
        let data = b"@r0\nACGT\n+\n@@@@\n@r1\nGGGG\n+\nIIII\n";
        let s = find_record_start(data, 1).unwrap();
        assert_eq!(&data[s..s + 3], b"@r1");
    }

    #[test]
    fn chunks_cover_all_bytes_and_records() {
        let data = sample_bytes(40);
        for c in [1, 2, 3, 7, 13] {
            let specs = chunk_fastq_bytes(&data, c).unwrap();
            let total_bytes: u64 = specs.iter().map(|s| s.bytes).sum();
            assert_eq!(total_bytes, data.len() as u64, "c={c}");
            let total_seqs: u32 = specs.iter().map(|s| s.seqs).sum();
            assert_eq!(total_seqs, 40, "c={c}");
            // Chunks are contiguous and first_seq is cumulative.
            let mut off = 0u64;
            let mut seq = 0u32;
            for s in &specs {
                assert_eq!(s.offset, off);
                assert_eq!(s.first_seq, seq);
                off += s.bytes;
                seq += s.seqs;
            }
        }
    }

    #[test]
    fn each_chunk_parses_standalone() {
        let data = sample_bytes(25);
        let specs = chunk_fastq_bytes(&data, 4).unwrap();
        assert!(specs.len() >= 2);
        for s in &specs {
            let lo = s.offset as usize;
            let hi = lo + s.bytes as usize;
            let store = crate::parse::parse_fastq(&data[lo..hi], false).unwrap();
            assert_eq!(store.len(), s.seqs as usize);
        }
    }

    #[test]
    fn more_chunks_than_records_collapses() {
        let data = sample_bytes(2);
        let specs = chunk_fastq_bytes(&data, 16).unwrap();
        let total: u32 = specs.iter().map(|s| s.seqs).sum();
        assert_eq!(total, 2);
        assert!(specs.len() <= 2);
    }

    #[test]
    fn paired_chunks_hold_whole_pairs() {
        let data = sample_bytes(40); // even count
        for c in [1, 2, 3, 7, 13] {
            let specs = chunk_fastq_bytes_paired(&data, c).unwrap();
            let total: u32 = specs.iter().map(|s| s.seqs).sum();
            assert_eq!(total, 40, "c={c}");
            let bytes: u64 = specs.iter().map(|s| s.bytes).sum();
            assert_eq!(bytes, data.len() as u64, "c={c}");
            for s in &specs {
                assert_eq!(s.first_seq % 2, 0, "c={c}");
                assert_eq!(s.seqs % 2, 0, "c={c}");
            }
            // contiguous
            let mut off = 0u64;
            for s in &specs {
                assert_eq!(s.offset, off);
                off += s.bytes;
            }
        }
    }

    #[test]
    fn paired_chunks_parse_standalone() {
        let data = sample_bytes(18);
        for s in chunk_fastq_bytes_paired(&data, 4).unwrap() {
            let lo = s.offset as usize;
            let store = crate::parse::parse_fastq(&data[lo..lo + s.bytes as usize], true).unwrap();
            assert_eq!(store.len(), s.seqs as usize);
        }
    }

    #[test]
    fn paired_chunker_rejects_odd_record_count() {
        let data = sample_bytes(5);
        assert!(matches!(
            chunk_fastq_bytes_paired(&data, 2),
            Err(FastqError::Malformed { .. })
        ));
    }

    #[test]
    fn paired_chunker_empty_input() {
        assert!(chunk_fastq_bytes_paired(b"", 3).unwrap().is_empty());
    }

    #[test]
    fn trailing_blank_line_rejected() {
        let mut data = sample_bytes(3);
        data.push(b'\n');
        // The old `lines / 4` count would silently report 3 records here
        // while shifting byte accounting; now it is a hard error.
        assert!(matches!(
            chunk_fastq_bytes(&data, 2),
            Err(FastqError::Malformed { .. })
        ));
    }

    #[test]
    fn wrapped_record_rejected() {
        let data = b"@r0\nACGT\nACGT\n+\nIIIIIIII\n";
        match chunk_fastq_bytes(data, 1) {
            Err(FastqError::Malformed { record, what }) => {
                assert_eq!(record, 1);
                assert!(what.contains("'+'"), "{what}");
            }
            other => panic!("expected malformed error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_record_rejected() {
        let data = b"@r0\nACGT\n+\n";
        assert!(matches!(
            chunk_fastq_bytes(data, 1),
            Err(FastqError::Malformed { .. })
        ));
    }

    #[test]
    fn crlf_records_count_cleanly() {
        let data = b"@r0\r\nACGT\r\n+\r\nIIII\r\n";
        let specs = chunk_fastq_bytes(data, 1).unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].seqs, 1);
    }

    #[test]
    fn no_trailing_newline_still_counts() {
        let data = b"@r0\nACGT\n+\nIIII\n@r1\nGG\n+\nII";
        let specs = chunk_fastq_bytes(data, 1).unwrap();
        assert_eq!(specs[0].seqs, 2);
    }

    #[test]
    fn malformed_error_reports_global_record_index() {
        // Second record is wrapped; with one chunk the error must name
        // record 2, not a chunk-local index.
        let data = b"@r0\nACGT\n+\nIIII\n@r1\nAC\nGT\n+\nIIII\n";
        match chunk_fastq_bytes(data, 1) {
            Err(FastqError::Malformed { record, .. }) => assert_eq!(record, 2),
            other => panic!("expected malformed error, got {other:?}"),
        }
    }

    #[test]
    fn count_record_starts_matches_record_starts() {
        let data = sample_bytes(9);
        assert_eq!(
            count_record_starts(&data),
            record_starts(&data).len() as u64
        );
        assert_eq!(count_record_starts(b""), 0);
    }

    #[test]
    fn chunk_store_covers_everything() {
        let mut s = ReadStore::new();
        for _ in 0..10 {
            s.push_pair(b"ACGTACGTACGT", b"TTGGCCAATTGG");
        }
        for c in [1, 2, 3, 5] {
            let specs = chunk_store(&s, c);
            let total: u32 = specs.iter().map(|x| x.seqs).sum();
            assert_eq!(total, 20, "c={c}");
            assert!(specs.len() <= c);
        }
    }

    #[test]
    fn chunk_store_never_splits_pairs() {
        let mut s = ReadStore::new();
        for _ in 0..50 {
            s.push_pair(b"ACGTACGT", b"GGCCGGCC");
        }
        for c in [2, 3, 7] {
            for spec in chunk_store(&s, c) {
                // First sequence of a chunk must be mate 1 (even index here).
                assert_eq!(spec.first_seq % 2, 0, "c={c}");
                assert_eq!(spec.seqs % 2, 0, "c={c}");
            }
        }
    }

    #[test]
    fn chunk_store_empty() {
        assert!(chunk_store(&ReadStore::new(), 4).is_empty());
    }
}
