//! FASTQ output.
//!
//! Buffered writers are the caller's responsibility for file handles opened
//! elsewhere; the path-based helper wraps its file in a [`BufWriter`]. When
//! a store holds no names or qualities, names are generated as `r{index}`
//! and qualities are constant `'I'` (Phred 40), matching what the synthetic
//! data generator would produce.

use crate::store::ReadStore;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Write all sequences of `store` as 4-line FASTQ records.
pub fn write_fastq(mut w: impl Write, store: &ReadStore) -> io::Result<()> {
    let mut qual_buf = Vec::new();
    for i in 0..store.len() {
        let seq = store.seq(i);
        w.write_all(b"@")?;
        match store.name(i) {
            Some(n) => w.write_all(n.as_bytes())?,
            None => write!(w, "r{i}")?,
        }
        w.write_all(b"\n")?;
        w.write_all(seq)?;
        w.write_all(b"\n+\n")?;
        match store.qual(i) {
            Some(q) => w.write_all(q)?,
            None => {
                qual_buf.clear();
                qual_buf.resize(seq.len(), b'I');
                w.write_all(&qual_buf)?;
            }
        }
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Write `store` to a FASTQ file at `path` (buffered, explicit flush).
pub fn write_fastq_path(path: impl AsRef<Path>, store: &ReadStore) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    write_fastq(&mut w, store)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_fastq;

    #[test]
    fn writes_generated_names_and_quals() {
        let mut s = ReadStore::new();
        s.push_single(b"ACGT");
        let mut out = Vec::new();
        write_fastq(&mut out, &s).unwrap();
        assert_eq!(out, b"@r0\nACGT\n+\nIIII\n");
    }

    #[test]
    fn roundtrips_through_parser() {
        let mut s = ReadStore::new();
        s.push_pair(b"ACGTACGT", b"TTGGCCAA");
        let mut buf = Vec::new();
        write_fastq(&mut buf, &s).unwrap();
        let back = parse_fastq(&buf[..], true).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.seq(0), s.seq(0));
        assert_eq!(back.seq(1), s.seq(1));
        assert_eq!(back.num_fragments(), 1);
    }

    #[test]
    fn preserves_existing_names() {
        let mut s = ReadStore::new();
        s.push_single(b"AC");
        s.set_last_name("myread/1");
        s.set_last_qual(b"!!");
        let mut buf = Vec::new();
        write_fastq(&mut buf, &s).unwrap();
        assert_eq!(buf, b"@myread/1\nAC\n+\n!!\n");
    }

    #[test]
    fn record_bytes_model_matches_output() {
        let mut s = ReadStore::new();
        s.push_single(b"ACGTACGT");
        s.push_single(b"AC");
        let mut buf = Vec::new();
        write_fastq(&mut buf, &s).unwrap();
        let modeled: usize = (0..s.len()).map(|i| s.record_bytes(i)).sum();
        assert_eq!(buf.len(), modeled);
    }

    #[test]
    fn path_writer_creates_file() {
        let dir = std::env::temp_dir().join("metaprep_io_write_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.fastq");
        let mut s = ReadStore::new();
        s.push_single(b"ACGT");
        write_fastq_path(&path, &s).unwrap();
        let back = crate::parse::parse_fastq_path(&path, false).unwrap();
        assert_eq!(back.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
