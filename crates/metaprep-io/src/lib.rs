//! FASTQ input/output and logical file chunking for METAPREP.
//!
//! The pipeline's unit of input is a [`ReadStore`]: a flat, cache-friendly
//! container of read sequences where every sequence carries a *fragment id*
//! (global read id). Both mates of a paired-end read share one fragment id,
//! which is how METAPREP preserves pairing through partitioning (paper
//! §3.2). Stores can be built in memory (synthetic data) or parsed from
//! FASTQ files ([`parse`]), and written back out as FASTQ ([`write`]).
//!
//! [`chunk`] implements the logical FASTQ chunking used by the `FASTQPart`
//! index (paper §3.1.2): a file is split into `C` byte ranges of roughly
//! equal size whose boundaries are aligned to record starts, so that threads
//! can read chunks independently and in parallel.

pub mod chunk;
pub mod fasta;
pub mod parse;
pub mod store;
pub mod stream;
pub mod trim;
pub mod write;

pub use chunk::{
    chunk_fastq_bytes, chunk_fastq_bytes_paired, chunk_store, count_record_starts, count_records,
    find_record_start, ChunkSpec,
};
pub use fasta::{parse_fasta, parse_fasta_path, write_fasta, write_fasta_path, FastaRecord};
pub use parse::{
    deinterleave, parse_fastq, parse_fastq_chunk, parse_fastq_pair_files, parse_fastq_path,
    FastqError, FastqRecord,
};
pub use store::ReadStore;
pub use stream::{StreamChunk, StreamChunker, DEFAULT_INDEX_WINDOW};
pub use trim::{trim_adapter, trim_quality, TrimStats};
pub use write::{write_fastq, write_fastq_path};
