//! FASTQ parsing.
//!
//! Byte-oriented (no UTF-8 validation on sequence/quality lines) and
//! buffered, per the I/O guidance for hot loops. Only the 4-line FASTQ form
//! is supported — the form emitted by sequencers and consumed by the paper's
//! toolchain. Paired-end data is conventionally interleaved (mate 1 then
//! mate 2); [`parse_fastq`] takes a flag saying whether to pair consecutive
//! records under one fragment id.

use crate::store::ReadStore;
use std::fmt;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

/// One FASTQ record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FastqRecord {
    /// Header without the leading `@`.
    pub name: String,
    /// Sequence bytes.
    pub seq: Vec<u8>,
    /// Quality bytes (same length as `seq`).
    pub qual: Vec<u8>,
}

/// Errors produced by the FASTQ parser.
#[derive(Debug)]
pub enum FastqError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem, with the 1-based record index and a description.
    Malformed { record: usize, what: String },
}

impl fmt::Display for FastqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastqError::Io(e) => write!(f, "I/O error: {e}"),
            FastqError::Malformed { record, what } => {
                write!(f, "malformed FASTQ at record {record}: {what}")
            }
        }
    }
}

impl std::error::Error for FastqError {}

impl From<io::Error> for FastqError {
    fn from(e: io::Error) -> Self {
        FastqError::Io(e)
    }
}

/// Read one line into `buf` (excluding the terminator). Returns `false` at
/// EOF with nothing read. Accepts both `\n` and `\r\n` endings.
fn read_line(r: &mut impl BufRead, buf: &mut Vec<u8>) -> io::Result<bool> {
    buf.clear();
    let n = r.read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(false);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    Ok(true)
}

/// Parse FASTQ from a reader into a [`ReadStore`].
///
/// When `paired` is true, consecutive records are treated as mates and share
/// a fragment id; the record count must then be even.
pub fn parse_fastq(reader: impl BufRead, paired: bool) -> Result<ReadStore, FastqError> {
    let mut r = reader;
    let mut store = ReadStore::new();
    let mut header = Vec::new();
    let mut seq = Vec::new();
    let mut plus = Vec::new();
    let mut qual = Vec::new();
    let mut record = 0usize;
    let mut pending_pair = false;

    loop {
        if !read_line(&mut r, &mut header)? {
            break;
        }
        if header.is_empty() {
            // Tolerate blank lines between records (and before EOF).
            continue;
        }
        record += 1;
        if header[0] != b'@' {
            return Err(FastqError::Malformed {
                record,
                what: format!("header must start with '@', got {:?}", header[0] as char),
            });
        }
        if !read_line(&mut r, &mut seq)? {
            return Err(FastqError::Malformed {
                record,
                what: "EOF before sequence line".into(),
            });
        }
        if !read_line(&mut r, &mut plus)? {
            return Err(FastqError::Malformed {
                record,
                what: "EOF before '+' line".into(),
            });
        }
        if plus.first() != Some(&b'+') {
            return Err(FastqError::Malformed {
                record,
                what: "third line must start with '+'".into(),
            });
        }
        if !read_line(&mut r, &mut qual)? {
            return Err(FastqError::Malformed {
                record,
                what: "EOF before quality line".into(),
            });
        }
        if qual.len() != seq.len() {
            return Err(FastqError::Malformed {
                record,
                what: format!(
                    "quality length {} != sequence length {}",
                    qual.len(),
                    seq.len()
                ),
            });
        }

        if paired && pending_pair {
            // Second mate of the pair: reuse the previous fragment id.
            let frag = store.num_fragments() - 1;
            store.push_with_frag(&seq, frag);
        } else {
            store.push_single(&seq);
        }
        pending_pair = paired && !pending_pair;
        store.set_last_name(std::str::from_utf8(&header[1..]).map_err(|_| {
            FastqError::Malformed {
                record,
                what: "header is not UTF-8".into(),
            }
        })?);
        store.set_last_qual(&qual);
    }

    if paired && pending_pair {
        return Err(FastqError::Malformed {
            record,
            what: "odd number of records in paired (interleaved) file".into(),
        });
    }
    Ok(store)
}

/// Parse a FASTQ file from a path.
pub fn parse_fastq_path(path: impl AsRef<Path>, paired: bool) -> Result<ReadStore, FastqError> {
    let f = std::fs::File::open(path)?;
    parse_fastq(BufReader::new(f), paired)
}

/// Parse a *two-file* paired-end dataset (`reads_1.fastq` + `reads_2.fastq`,
/// mate `i` of each file forming fragment `i`) into one interleaved store.
///
/// This is the layout the paper's chunker handles in §4.3 ("after finding
/// the chunk offset in one FASTQ file, the same read has to be located in
/// the other FASTQ file"); internally METAPREP-RS always works on the
/// interleaved form, so this adapter does the mate alignment once up
/// front and errors on count mismatches instead of silently mispairing.
pub fn parse_fastq_pair_files(
    path1: impl AsRef<Path>,
    path2: impl AsRef<Path>,
) -> Result<ReadStore, FastqError> {
    let r1 = parse_fastq_path(path1, false)?;
    let r2 = parse_fastq_path(path2, false)?;
    if r1.len() != r2.len() {
        return Err(FastqError::Malformed {
            record: r1.len().min(r2.len()) + 1,
            what: format!("mate files disagree: {} vs {} records", r1.len(), r2.len()),
        });
    }
    let mut out = ReadStore::new();
    for i in 0..r1.len() {
        let frag = i as u32;
        out.push_with_frag(r1.seq(i), frag);
        if let Some(n) = r1.name(i) {
            out.set_last_name(n);
        }
        if let Some(q) = r1.qual(i) {
            out.set_last_qual(q);
        }
        out.push_with_frag(r2.seq(i), frag);
        if let Some(n) = r2.name(i) {
            out.set_last_name(n);
        }
        if let Some(q) = r2.qual(i) {
            out.set_last_qual(q);
        }
    }
    Ok(out)
}

/// Split an interleaved paired store back into `(mate1, mate2)` stores —
/// the inverse of [`parse_fastq_pair_files`], for writing two-file output.
///
/// # Panics
/// Panics if the store is not strictly interleaved (every fragment exactly
/// two consecutive sequences).
pub fn deinterleave(store: &ReadStore) -> (ReadStore, ReadStore) {
    assert_eq!(store.len() % 2, 0, "interleaved store needs an even length");
    let mut m1 = ReadStore::new();
    let mut m2 = ReadStore::new();
    for i in (0..store.len()).step_by(2) {
        assert_eq!(
            store.frag_id(i),
            store.frag_id(i + 1),
            "sequences {i} and {} are not mates",
            i + 1
        );
        for (out, j) in [(&mut m1, i), (&mut m2, i + 1)] {
            out.push_single(store.seq(j));
            if let Some(n) = store.name(j) {
                out.set_last_name(n);
            }
            if let Some(q) = store.qual(j) {
                out.set_last_qual(q);
            }
        }
    }
    (m1, m2)
}

/// Parse one logical chunk of a FASTQ file: seek to `spec.offset`, read
/// `spec.bytes` bytes, and parse the records inside. This is the file-based
/// counterpart of the in-memory chunking — each thread of a file-backed
/// KmerGen loads exactly its chunk (paper §3.2: "the C file chunks are
/// distributed to threads to enable parallel FASTQ file read operations").
pub fn parse_fastq_chunk(
    path: impl AsRef<Path>,
    spec: &crate::chunk::ChunkSpec,
    paired: bool,
) -> Result<ReadStore, FastqError> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = std::fs::File::open(path)?;
    f.seek(SeekFrom::Start(spec.offset))?;
    let mut buf = vec![0u8; spec.bytes as usize];
    f.read_exact(&mut buf)?;
    let store = parse_fastq(&buf[..], paired)?;
    if store.len() != spec.seqs as usize {
        return Err(FastqError::Malformed {
            record: store.len(),
            what: format!(
                "chunk parsed {} records but the index says {}",
                store.len(),
                spec.seqs
            ),
        });
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "@r0\nACGT\n+\nIIII\n@r1\nGGCC\n+\nJJJJ\n";

    #[test]
    fn parses_two_records() {
        let s = parse_fastq(SAMPLE.as_bytes(), false).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.seq(0), b"ACGT");
        assert_eq!(s.seq(1), b"GGCC");
        assert_eq!(s.name(0), Some("r0"));
        assert_eq!(s.qual(1), Some(&b"JJJJ"[..]));
        assert_eq!(s.num_fragments(), 2);
    }

    #[test]
    fn paired_mode_shares_fragment_ids() {
        let s = parse_fastq(SAMPLE.as_bytes(), true).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_fragments(), 1);
        assert_eq!(s.frag_id(0), s.frag_id(1));
    }

    #[test]
    fn paired_mode_rejects_odd_count() {
        let input = "@r0\nACGT\n+\nIIII\n";
        assert!(matches!(
            parse_fastq(input.as_bytes(), true),
            Err(FastqError::Malformed { .. })
        ));
    }

    #[test]
    fn crlf_line_endings() {
        let input = "@r0\r\nACGT\r\n+\r\nIIII\r\n";
        let s = parse_fastq(input.as_bytes(), false).unwrap();
        assert_eq!(s.seq(0), b"ACGT");
        assert_eq!(s.qual(0), Some(&b"IIII"[..]));
    }

    #[test]
    fn plus_line_may_repeat_name() {
        let input = "@r0\nACGT\n+r0 extra\nIIII\n";
        let s = parse_fastq(input.as_bytes(), false).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn qual_line_starting_with_at_is_fine() {
        let input = "@r0\nACGT\n+\n@III\n@r1\nGG\n+\nII\n";
        let s = parse_fastq(input.as_bytes(), false).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.qual(0), Some(&b"@III"[..]));
    }

    #[test]
    fn missing_at_rejected() {
        let input = "r0\nACGT\n+\nIIII\n";
        assert!(parse_fastq(input.as_bytes(), false).is_err());
    }

    #[test]
    fn truncated_record_rejected() {
        for input in ["@r0\n", "@r0\nACGT\n", "@r0\nACGT\n+\n"] {
            assert!(parse_fastq(input.as_bytes(), false).is_err(), "{input:?}");
        }
    }

    #[test]
    fn qual_length_mismatch_rejected() {
        let input = "@r0\nACGT\n+\nII\n";
        assert!(parse_fastq(input.as_bytes(), false).is_err());
    }

    #[test]
    fn empty_input_is_empty_store() {
        let s = parse_fastq(&b""[..], false).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn pair_files_interleave_and_roundtrip() {
        let dir = std::env::temp_dir().join("metaprep_io_pairfiles_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("r1.fastq"),
            "@a/1\nACGT\n+\nIIII\n@b/1\nGGGG\n+\nJJJJ\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("r2.fastq"),
            "@a/2\nTTTT\n+\nKKKK\n@b/2\nCCCC\n+\nLLLL\n",
        )
        .unwrap();
        let s = parse_fastq_pair_files(dir.join("r1.fastq"), dir.join("r2.fastq")).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.num_fragments(), 2);
        assert_eq!(s.seq(0), b"ACGT");
        assert_eq!(s.seq(1), b"TTTT"); // mate 2 of fragment 0
        assert_eq!(s.frag_id(0), s.frag_id(1));
        assert_eq!(s.name(1), Some("a/2"));

        let (m1, m2) = deinterleave(&s);
        assert_eq!(m1.len(), 2);
        assert_eq!(m2.len(), 2);
        assert_eq!(m1.seq(1), b"GGGG");
        assert_eq!(m2.seq(0), b"TTTT");
        assert_eq!(m2.qual(1), Some(&b"LLLL"[..]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pair_files_count_mismatch_rejected() {
        let dir = std::env::temp_dir().join("metaprep_io_pairmismatch_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("r1.fastq"), "@a\nAC\n+\nII\n@b\nGG\n+\nJJ\n").unwrap();
        std::fs::write(dir.join("r2.fastq"), "@a\nTT\n+\nKK\n").unwrap();
        assert!(parse_fastq_pair_files(dir.join("r1.fastq"), dir.join("r2.fastq")).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic]
    fn deinterleave_rejects_non_interleaved() {
        let mut s = ReadStore::new();
        s.push_single(b"AC");
        s.push_single(b"GG"); // distinct fragments, not mates
        let _ = deinterleave(&s);
    }

    #[test]
    fn chunked_file_reads_reassemble_the_store() {
        use crate::chunk::chunk_fastq_bytes;
        use crate::write::write_fastq;
        let mut s = ReadStore::new();
        for i in 0..23 {
            let seq: Vec<u8> = b"ACGTTGCA"
                .iter()
                .cycle()
                .skip(i % 8)
                .take(30 + i)
                .copied()
                .collect();
            s.push_single(&seq);
        }
        let mut bytes = Vec::new();
        write_fastq(&mut bytes, &s).unwrap();
        let dir = std::env::temp_dir().join("metaprep_io_chunk_read_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reads.fastq");
        std::fs::write(&path, &bytes).unwrap();

        let specs = chunk_fastq_bytes(&bytes, 4).unwrap();
        let mut total = 0usize;
        for spec in &specs {
            let chunk = super::parse_fastq_chunk(&path, spec, false).unwrap();
            assert_eq!(chunk.len(), spec.seqs as usize);
            for i in 0..chunk.len() {
                assert_eq!(chunk.seq(i), s.seq(spec.first_seq as usize + i));
            }
            total += chunk.len();
        }
        assert_eq!(total, 23);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chunk_read_detects_index_mismatch() {
        use crate::chunk::ChunkSpec;
        let dir = std::env::temp_dir().join("metaprep_io_chunk_mismatch_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reads.fastq");
        std::fs::write(&path, b"@r0\nACGT\n+\nIIII\n").unwrap();
        let bad = ChunkSpec {
            offset: 0,
            bytes: 16,
            first_seq: 0,
            seqs: 2, // wrong
        };
        assert!(super::parse_fastq_chunk(&path, &bad, false).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn error_reports_record_index() {
        let input = "@r0\nACGT\n+\nIIII\n@r1\nAC\n+\nI\n";
        match parse_fastq(input.as_bytes(), false) {
            Err(FastqError::Malformed { record, .. }) => assert_eq!(record, 2),
            other => panic!("expected malformed error, got {other:?}"),
        }
    }
}
