//! FASTA input/output (contigs, reference genomes).
//!
//! The assembler emits contigs; downstream evaluation reads them back.
//! Multi-line sequences are supported on input; output wraps at a fixed
//! column width.

use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

/// One FASTA record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header without the leading `>`.
    pub name: String,
    /// Sequence bytes (newlines stripped).
    pub seq: Vec<u8>,
}

/// Parse FASTA records from a reader.
pub fn parse_fasta(reader: impl BufRead) -> io::Result<Vec<FastaRecord>> {
    let mut records = Vec::new();
    let mut name: Option<String> = None;
    let mut seq: Vec<u8> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let line = line.trim_end();
        if let Some(h) = line.strip_prefix('>') {
            if let Some(n) = name.take() {
                records.push(FastaRecord {
                    name: n,
                    seq: std::mem::take(&mut seq),
                });
            }
            name = Some(h.to_string());
        } else if !line.is_empty() {
            if name.is_none() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "FASTA sequence before any '>' header",
                ));
            }
            seq.extend_from_slice(line.as_bytes());
        }
    }
    if let Some(n) = name {
        records.push(FastaRecord { name: n, seq });
    }
    Ok(records)
}

/// Parse a FASTA file from a path.
pub fn parse_fasta_path(path: impl AsRef<Path>) -> io::Result<Vec<FastaRecord>> {
    parse_fasta(BufReader::new(std::fs::File::open(path)?))
}

/// Write records as FASTA, wrapping sequence lines at `width` columns.
pub fn write_fasta(mut w: impl Write, records: &[FastaRecord], width: usize) -> io::Result<()> {
    assert!(width >= 1);
    for rec in records {
        writeln!(w, ">{}", rec.name)?;
        for chunk in rec.seq.chunks(width) {
            w.write_all(chunk)?;
            w.write_all(b"\n")?;
        }
        if rec.seq.is_empty() {
            w.write_all(b"\n")?;
        }
    }
    Ok(())
}

/// Write a FASTA file at `path` (80-column wrapped, buffered).
pub fn write_fasta_path(path: impl AsRef<Path>, records: &[FastaRecord]) -> io::Result<()> {
    let mut w = io::BufWriter::new(std::fs::File::create(path)?);
    write_fasta(&mut w, records, 80)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_record() {
        let recs = parse_fasta(&b">c1 len=8\nACGTACGT\n"[..]).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "c1 len=8");
        assert_eq!(recs[0].seq, b"ACGTACGT");
    }

    #[test]
    fn parses_multiline_sequences() {
        let recs = parse_fasta(&b">c1\nACGT\nACGT\n>c2\nTTTT\n"[..]).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, b"ACGTACGT");
        assert_eq!(recs[1].seq, b"TTTT");
    }

    #[test]
    fn rejects_sequence_before_header() {
        assert!(parse_fasta(&b"ACGT\n>c1\nAC\n"[..]).is_err());
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(parse_fasta(&b""[..]).unwrap().is_empty());
    }

    #[test]
    fn roundtrip_with_wrapping() {
        let recs = vec![
            FastaRecord {
                name: "a".into(),
                seq: b"ACGT".repeat(30),
            },
            FastaRecord {
                name: "b".into(),
                seq: b"TT".to_vec(),
            },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &recs, 50).unwrap();
        let back = parse_fasta(&buf[..]).unwrap();
        assert_eq!(back, recs);
        // Wrapped lines are at most 50 columns.
        for line in buf.split(|&b| b == b'\n') {
            assert!(line.len() <= 51);
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("metaprep_io_fasta_test");
        std::fs::create_dir_all(&dir).unwrap();
        let recs = vec![FastaRecord {
            name: "contig_0".into(),
            seq: b"ACGTACGTGG".to_vec(),
        }];
        let path = dir.join("x.fa");
        write_fasta_path(&path, &recs).unwrap();
        assert_eq!(parse_fasta_path(&path).unwrap(), recs);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_sequence_record_roundtrips() {
        let recs = vec![FastaRecord {
            name: "empty".into(),
            seq: vec![],
        }];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &recs, 80).unwrap();
        let back = parse_fasta(&buf[..]).unwrap();
        assert_eq!(back.len(), 1);
        assert!(back[0].seq.is_empty());
    }
}
