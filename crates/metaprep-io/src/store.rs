//! Flat in-memory read storage.

/// A flat container of read sequences.
///
/// Sequences are concatenated into one byte buffer with an offsets table, so
/// iterating reads is a linear scan (no per-read allocation) — the access
/// pattern KmerGen needs. Each sequence carries:
///
/// * a *fragment id* (global read id): both mates of a paired-end read share
///   one fragment id (paper §3.2), and component labels are per fragment;
/// * an optional name (generated on write when absent);
/// * optional quality bytes (constant-filled on write when absent).
#[derive(Clone, Debug, Default)]
pub struct ReadStore {
    data: Vec<u8>,
    /// `bounds[i]..bounds[i+1]` is sequence `i` within `data`.
    bounds: Vec<usize>,
    /// Per-sequence fragment id.
    frag: Vec<u32>,
    /// Per-sequence names; empty Vec means "no names stored".
    names: Vec<String>,
    /// Quality bytes, same layout as `data`; empty means "no quals stored".
    quals: Vec<u8>,
    /// Number of distinct fragments (max frag id + 1).
    num_fragments: u32,
}

impl ReadStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self {
            bounds: vec![0],
            ..Self::default()
        }
    }

    /// Create an empty store with capacity hints (`seqs` sequences of about
    /// `avg_len` bases).
    pub fn with_capacity(seqs: usize, avg_len: usize) -> Self {
        let mut s = Self::new();
        s.data.reserve(seqs * avg_len);
        s.bounds.reserve(seqs + 1);
        s.frag.reserve(seqs);
        s
    }

    /// Append one unpaired sequence; its fragment id is allocated fresh.
    /// Returns the fragment id.
    pub fn push_single(&mut self, seq: &[u8]) -> u32 {
        let id = self.num_fragments;
        self.push_with_frag(seq, id);
        id
    }

    /// Append a paired-end read (two mates sharing one fragment id).
    /// Returns the fragment id.
    pub fn push_pair(&mut self, mate1: &[u8], mate2: &[u8]) -> u32 {
        let id = self.num_fragments;
        self.push_with_frag(mate1, id);
        self.push_with_frag(mate2, id);
        id
    }

    /// Append a sequence under an explicit fragment id. Ids may repeat (for
    /// mates) but the maximum must grow densely; this is enforced so that
    /// `num_fragments` can size component arrays exactly.
    pub fn push_with_frag(&mut self, seq: &[u8], frag: u32) {
        assert!(
            frag <= self.num_fragments,
            "fragment ids must be dense: got {frag}, next is {}",
            self.num_fragments
        );
        self.data.extend_from_slice(seq);
        self.bounds.push(self.data.len());
        self.frag.push(frag);
        if frag == self.num_fragments {
            self.num_fragments += 1;
        }
    }

    /// Attach a name to the most recently pushed sequence. Either all
    /// sequences are named or none are.
    pub fn set_last_name(&mut self, name: &str) {
        assert_eq!(
            self.names.len() + 1,
            self.len(),
            "set_last_name must follow every push"
        );
        self.names.push(name.to_string());
    }

    /// Attach quality bytes to the most recently pushed sequence.
    pub fn set_last_qual(&mut self, qual: &[u8]) {
        let (lo, hi) = (self.bounds[self.len() - 1], self.bounds[self.len()]);
        assert_eq!(qual.len(), hi - lo, "quality length must match sequence");
        assert_eq!(self.quals.len(), lo, "set_last_qual must follow every push");
        self.quals.extend_from_slice(qual);
    }

    /// Number of stored sequences (mates count separately).
    pub fn len(&self) -> usize {
        self.bounds.len() - 1
    }

    /// True if no sequences are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct fragments (global read ids). This is the `R` of
    /// the paper's analysis (§3.7) and the size of component arrays.
    pub fn num_fragments(&self) -> u32 {
        self.num_fragments
    }

    /// Total bases stored (the `M` of the paper's analysis, in bp).
    pub fn total_bases(&self) -> usize {
        self.data.len()
    }

    /// Sequence `i`.
    #[inline]
    pub fn seq(&self, i: usize) -> &[u8] {
        &self.data[self.bounds[i]..self.bounds[i + 1]]
    }

    /// Fragment id of sequence `i`.
    #[inline]
    pub fn frag_id(&self, i: usize) -> u32 {
        self.frag[i]
    }

    /// Name of sequence `i`, if names are stored.
    pub fn name(&self, i: usize) -> Option<&str> {
        self.names.get(i).map(|s| s.as_str())
    }

    /// Quality slice of sequence `i`, if stored.
    pub fn qual(&self, i: usize) -> Option<&[u8]> {
        if self.quals.len() == self.data.len() {
            Some(&self.quals[self.bounds[i]..self.bounds[i + 1]])
        } else {
            None
        }
    }

    /// Iterate `(seq, frag_id)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], u32)> + '_ {
        (0..self.len()).map(move |i| (self.seq(i), self.frag_id(i)))
    }

    /// Byte size of sequence `i`'s FASTQ record as written by
    /// [`crate::write::write_fastq`] (used by the chunking model).
    pub fn record_bytes(&self, i: usize) -> usize {
        let name_len = self
            .name(i)
            .map(|n| n.len())
            .unwrap_or_else(|| format!("r{}", i).len());
        let seq_len = self.seq(i).len();
        // '@' + name + '\n' + seq + '\n' + '+' + '\n' + qual + '\n'
        1 + name_len + 1 + seq_len + 1 + 1 + 1 + seq_len + 1
    }

    /// Build a new store containing only sequences whose fragment id
    /// satisfies `keep`, renumbering fragment ids densely while preserving
    /// pairing and order.
    pub fn filter_fragments(&self, mut keep: impl FnMut(u32) -> bool) -> ReadStore {
        let mut remap: Vec<u32> = vec![u32::MAX; self.num_fragments as usize];
        let mut out = ReadStore::new();
        let mut next = 0u32;
        for i in 0..self.len() {
            let f = self.frag[i];
            if !keep(f) {
                continue;
            }
            let nf = if remap[f as usize] == u32::MAX {
                remap[f as usize] = next;
                next += 1;
                next - 1
            } else {
                remap[f as usize]
            };
            out.push_with_frag(self.seq(i), nf);
            if let Some(n) = self.name(i) {
                out.set_last_name(n);
            }
            if let Some(q) = self.qual(i) {
                out.set_last_qual(q);
            }
        }
        out
    }

    /// Concatenate another store onto this one, shifting its fragment ids.
    pub fn append(&mut self, other: &ReadStore) {
        let base = self.num_fragments;
        for i in 0..other.len() {
            self.push_with_frag(other.seq(i), base + other.frag_id(i));
            if let Some(n) = other.name(i) {
                self.set_last_name(n);
            }
            if let Some(q) = other.qual(i) {
                self.set_last_qual(q);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_store() {
        let s = ReadStore::new();
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.num_fragments(), 0);
        assert_eq!(s.total_bases(), 0);
    }

    #[test]
    fn push_single_allocates_fresh_ids() {
        let mut s = ReadStore::new();
        assert_eq!(s.push_single(b"ACGT"), 0);
        assert_eq!(s.push_single(b"GGGG"), 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_fragments(), 2);
        assert_eq!(s.seq(0), b"ACGT");
        assert_eq!(s.seq(1), b"GGGG");
    }

    #[test]
    fn push_pair_shares_fragment_id() {
        let mut s = ReadStore::new();
        let id = s.push_pair(b"AAAA", b"TTTT");
        assert_eq!(id, 0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_fragments(), 1);
        assert_eq!(s.frag_id(0), s.frag_id(1));
        let id2 = s.push_pair(b"CCCC", b"GGGG");
        assert_eq!(id2, 1);
        assert_eq!(s.num_fragments(), 2);
    }

    #[test]
    #[should_panic]
    fn sparse_fragment_ids_rejected() {
        let mut s = ReadStore::new();
        s.push_with_frag(b"ACGT", 5);
    }

    #[test]
    fn names_and_quals_roundtrip() {
        let mut s = ReadStore::new();
        s.push_single(b"ACGT");
        s.set_last_name("read0");
        s.set_last_qual(b"IIII");
        assert_eq!(s.name(0), Some("read0"));
        assert_eq!(s.qual(0), Some(&b"IIII"[..]));
    }

    #[test]
    fn qual_absent_when_not_set() {
        let mut s = ReadStore::new();
        s.push_single(b"ACGT");
        assert_eq!(s.qual(0), None);
        assert_eq!(s.name(0), None);
    }

    #[test]
    #[should_panic]
    fn qual_length_mismatch_rejected() {
        let mut s = ReadStore::new();
        s.push_single(b"ACGT");
        s.set_last_qual(b"II");
    }

    #[test]
    fn iter_yields_seq_and_frag() {
        let mut s = ReadStore::new();
        s.push_pair(b"AA", b"CC");
        s.push_single(b"GG");
        let v: Vec<_> = s.iter().map(|(q, f)| (q.to_vec(), f)).collect();
        assert_eq!(
            v,
            vec![
                (b"AA".to_vec(), 0),
                (b"CC".to_vec(), 0),
                (b"GG".to_vec(), 1)
            ]
        );
    }

    #[test]
    fn filter_fragments_renumbers_densely() {
        let mut s = ReadStore::new();
        s.push_pair(b"AA", b"CC"); // frag 0
        s.push_single(b"GG"); // frag 1
        s.push_pair(b"TT", b"AA"); // frag 2
        let kept = s.filter_fragments(|f| f != 1);
        assert_eq!(kept.len(), 4);
        assert_eq!(kept.num_fragments(), 2);
        assert_eq!(kept.frag_id(0), 0);
        assert_eq!(kept.frag_id(1), 0);
        assert_eq!(kept.frag_id(2), 1);
        assert_eq!(kept.frag_id(3), 1);
        assert_eq!(kept.seq(2), b"TT");
    }

    #[test]
    fn append_shifts_fragment_ids() {
        let mut a = ReadStore::new();
        a.push_single(b"AA");
        let mut b = ReadStore::new();
        b.push_pair(b"CC", b"GG");
        a.append(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.num_fragments(), 2);
        assert_eq!(a.frag_id(1), 1);
        assert_eq!(a.frag_id(2), 1);
    }

    #[test]
    fn total_bases_sums_lengths() {
        let mut s = ReadStore::new();
        s.push_single(b"ACGT");
        s.push_single(b"AC");
        assert_eq!(s.total_bases(), 6);
    }

    #[test]
    fn record_bytes_matches_written_form() {
        let mut s = ReadStore::new();
        s.push_single(b"ACGT");
        s.set_last_name("r0");
        s.set_last_qual(b"IIII");
        // @r0\nACGT\n+\nIIII\n = 1+2+1+4+1+1+1+4+1 = 16
        assert_eq!(s.record_bytes(0), 16);
    }
}
