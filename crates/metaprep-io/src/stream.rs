//! Streaming (windowed) chunk-boundary discovery for FASTQ files.
//!
//! [`chunk_fastq_bytes`](crate::chunk_fastq_bytes) and
//! [`chunk_fastq_bytes_paired`](crate::chunk_fastq_bytes_paired) need the
//! whole file in memory. For the paper's memory-efficient IndexCreate the
//! chunk table must be computable in O(window) memory instead: the
//! [`StreamChunker`] seeks to each byte target and probes a bounded window
//! with [`find_record_start`], growing the window only when a record
//! straddles it (and fetching only the window's new tail on each growth,
//! so one probe reads each file byte at most once — see
//! [`StreamChunker::probe_bytes_read`]). The boundaries it finds are
//! byte-identical to the
//! in-memory chunkers' (property-tested in `metaprep-index`), so switching
//! a pipeline between the two paths changes memory, not results.
//!
//! Why a verified hit inside a window is a hit for the whole file:
//! `find_record_start` accepts a position only after inspecting bytes that
//! all lie *before* the line-after-next's first byte. If that inspection
//! completes inside the window, the same bytes (and hence the same verdict)
//! exist in the full file. If it runs off the window's end the probe
//! returns `None`, which is final only when the window already reaches EOF;
//! otherwise the caller doubles the window and retries.

use crate::chunk::find_record_start;
use crate::parse::FastqError;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::Path;

/// Default probe/read window in bytes for streaming IndexCreate. A window
/// only needs to span a few FASTQ records (a record is typically a few
/// hundred bytes), so 64 KiB leaves two orders of magnitude of headroom
/// while keeping per-thread memory trivial.
pub const DEFAULT_INDEX_WINDOW: usize = 64 * 1024;

/// Smallest window the chunker will probe with. Below this the doubling
/// loop just wastes syscalls.
const MIN_WINDOW: usize = 16;

/// One pair-aligned chunk resolved by [`StreamChunker::resolve_paired`]:
/// a byte range plus its record-index range.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StreamChunk {
    /// Byte offset of the chunk within the file.
    pub offset: u64,
    /// Size of the chunk in bytes.
    pub bytes: u64,
    /// Global index of the first record in the chunk.
    pub first_seq: u64,
    /// Number of records in the chunk.
    pub seqs: u64,
}

/// Windowed record-boundary finder over an open FASTQ file.
pub struct StreamChunker {
    file: File,
    len: u64,
    window: usize,
    buf: Vec<u8>,
    /// Total bytes fetched by [`Self::find_record_start_at`] probes. A
    /// probe that doubles its window extends the buffer with only the new
    /// tail, so one probe reads each file byte at most once; this counter
    /// is how the regression test pins that bound.
    probe_bytes: u64,
}

impl StreamChunker {
    /// Open `path` with the given probe window (`0` = [`DEFAULT_INDEX_WINDOW`]).
    pub fn open(path: impl AsRef<Path>, window: usize) -> io::Result<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let window = if window == 0 {
            DEFAULT_INDEX_WINDOW
        } else {
            window.max(MIN_WINDOW)
        };
        Ok(Self {
            file,
            len,
            window,
            buf: Vec::new(),
            probe_bytes: 0,
        })
    }

    /// Total file length in bytes.
    pub fn file_len(&self) -> u64 {
        self.len
    }

    /// Read the byte range `[lo, hi)` of `file` into `out`, replacing its
    /// contents but reusing its capacity (the buffer-recycling primitive of
    /// the streaming indexer).
    pub fn read_range_into(file: &mut File, lo: u64, hi: u64, out: &mut Vec<u8>) -> io::Result<()> {
        debug_assert!(lo <= hi);
        out.clear();
        out.resize((hi - lo) as usize, 0);
        file.seek(SeekFrom::Start(lo))?;
        file.read_exact(out)?;
        Ok(())
    }

    /// Read the byte range `[lo, hi)` of this chunker's file into `out`.
    pub fn read_range(&mut self, lo: u64, hi: u64, out: &mut Vec<u8>) -> io::Result<()> {
        Self::read_range_into(&mut self.file, lo, hi, out)
    }

    /// Append the byte range `[lo, hi)` of `file` to `out`, growing it in
    /// place — the window-doubling primitive: already-read bytes stay put
    /// and only the new tail touches the disk.
    fn append_range(file: &mut File, lo: u64, hi: u64, out: &mut Vec<u8>) -> io::Result<()> {
        debug_assert!(lo <= hi);
        let old = out.len();
        out.resize(old + (hi - lo) as usize, 0);
        file.seek(SeekFrom::Start(lo))?;
        file.read_exact(&mut out[old..])
    }

    /// Total bytes [`Self::find_record_start_at`] has fetched from disk.
    pub fn probe_bytes_read(&self) -> u64 {
        self.probe_bytes
    }

    /// First record start at or after byte `pos`, probing bounded windows.
    /// Returns exactly what `find_record_start(&whole_file, pos)` would,
    /// without ever holding more than the current window in memory.
    pub fn find_record_start_at(&mut self, pos: u64) -> io::Result<Option<u64>> {
        if pos >= self.len {
            return Ok(None);
        }
        // find_record_start(data, pos) first rewinds to the line start at
        // or after `pos`, which inspects data[pos - 1]; keep that byte in
        // the window so relative and absolute probing agree.
        let base = pos.saturating_sub(1);
        let rel = (pos - base) as usize;
        let mut hi = (base + self.window as u64).min(self.len);
        Self::read_range_into(&mut self.file, base, hi, &mut self.buf)?;
        self.probe_bytes += hi - base;
        loop {
            match find_record_start(&self.buf, rel) {
                Some(r) => return Ok(Some(base + r as u64)),
                // A miss is final only when the window reaches EOF;
                // otherwise the probe may have been cut mid-record.
                None if hi == self.len => return Ok(None),
                None => {
                    // Double the window, fetching only the new tail. The
                    // bytes already in `buf` are immutable file contents;
                    // re-reading them from `base` (as this loop once did)
                    // cost O(w log w) byte traffic plus a long seek per
                    // doubling whenever a record straddled the window.
                    let new_hi = (base + (hi - base).saturating_mul(2)).min(self.len);
                    Self::append_range(&mut self.file, hi, new_hi, &mut self.buf)?;
                    self.probe_bytes += new_hi - hi;
                    hi = new_hi;
                }
            }
        }
    }

    /// Unpaired chunk byte ranges, replicating `chunk_fastq_bytes`' target
    /// arithmetic (`want = i * (len / c)`, dedup on strictly-increasing
    /// starts) so both paths produce identical `ChunkSpec` tables.
    pub fn ranges(&mut self, c: usize) -> io::Result<Vec<(u64, u64)>> {
        assert!(c >= 1);
        let mut bounds = vec![0u64];
        let target = self.len / c as u64;
        for i in 1..c as u64 {
            let want = i * target;
            match self.find_record_start_at(want)? {
                // EXPECT: `bounds` is seeded with 0 above and only ever pushed to.
                Some(s) if s > *bounds.last().expect("nonempty") => bounds.push(s),
                _ => {}
            }
        }
        bounds.push(self.len);
        Ok(bounds
            .windows(2)
            .filter(|w| w[0] < w[1])
            .map(|w| (w[0], w[1]))
            .collect())
    }

    /// Tentative paired boundaries: the first record start at or after each
    /// byte target `j * len / c` (the paired chunker's rounding, which
    /// differs from the unpaired `i * (len / c)`). Record-index parity is
    /// not yet known at this point, so a boundary may split a mate pair;
    /// [`Self::resolve_paired`] fixes that up once per-range record counts
    /// are available.
    pub fn tentative_ranges_paired(&mut self, c: usize) -> io::Result<Vec<(u64, u64)>> {
        assert!(c >= 1);
        let Some(first) = self.find_record_start_at(0)? else {
            return Ok(Vec::new());
        };
        let mut bounds = vec![first];
        for j in 1..c as u64 {
            let target = j * self.len / c as u64;
            match self.find_record_start_at(target)? {
                // EXPECT: `bounds` is seeded with `first` above and only ever pushed to.
                Some(s) if s > *bounds.last().expect("nonempty") => bounds.push(s),
                _ => {}
            }
        }
        bounds.push(self.len);
        Ok(bounds
            .windows(2)
            .filter(|w| w[0] < w[1])
            .map(|w| (w[0], w[1]))
            .collect())
    }

    /// Turn tentative paired ranges plus their record counts into whole-pair
    /// chunks, replaying `chunk_fastq_bytes_paired`'s round-to-even + dedup
    /// at the record-index level: a boundary with an odd number of records
    /// before it moves one record to the right (found by probing past the
    /// tentative byte), exactly as `idx += idx % 2` does on the in-memory
    /// record-start array.
    pub fn resolve_paired(
        &mut self,
        ranges: &[(u64, u64)],
        counts: &[u64],
    ) -> Result<Vec<StreamChunk>, FastqError> {
        assert_eq!(ranges.len(), counts.len());
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Ok(Vec::new());
        }
        if !total.is_multiple_of(2) {
            return Err(FastqError::Malformed {
                record: total as usize,
                what: "paired FASTQ must hold an even record count".into(),
            });
        }
        // Record-index bounds with their byte positions. ranges[0].0 is the
        // first record start (record index 0).
        let mut bounds: Vec<(u64, u64)> = vec![(0, ranges[0].0)];
        let mut cumulative = 0u64;
        for (i, &(lo, _)) in ranges.iter().enumerate().skip(1) {
            cumulative += counts[i - 1];
            let (mut r, mut byte) = (cumulative, lo);
            if r % 2 == 1 {
                // Round up to even: the boundary becomes the start of the
                // record *after* the one starting at `lo`.
                r += 1;
                byte = match self.find_record_start_at(lo + 1) {
                    Ok(Some(b)) => b,
                    // No further record start: the rounded boundary is EOF
                    // (r == total, matching the in-memory hi_byte rule).
                    Ok(None) => self.len,
                    Err(e) => return Err(e.into()),
                };
            }
            let r = r.min(total);
            // EXPECT: `bounds` is seeded before the loop and only ever pushed to.
            if r > bounds.last().expect("nonempty").0 {
                bounds.push((r, byte));
            }
        }
        bounds.push((total, self.len));

        Ok(bounds
            .windows(2)
            .filter(|w| w[0].0 < w[1].0)
            .map(|w| StreamChunk {
                offset: w[0].1,
                bytes: w[1].1 - w[0].1,
                first_seq: w[0].0,
                seqs: w[1].0 - w[0].0,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{chunk_fastq_bytes, chunk_fastq_bytes_paired, count_record_starts};
    use crate::store::ReadStore;
    use crate::write::write_fastq;

    fn sample_bytes(n: usize) -> Vec<u8> {
        let mut s = ReadStore::new();
        for i in 0..n {
            let seq: Vec<u8> = b"ACGTTGCA"
                .iter()
                .cycle()
                .skip(i % 8)
                .take(20 + (i % 9) * 4)
                .copied()
                .collect();
            s.push_single(&seq);
        }
        let mut buf = Vec::new();
        write_fastq(&mut buf, &s).unwrap();
        buf
    }

    fn write_temp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("metaprep_io_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn windowed_probe_matches_in_memory_probe() {
        let data = sample_bytes(12);
        let path = write_temp("probe.fastq", &data);
        // Tiny windows force the doubling path; big ones the direct path.
        for window in [16, 23, 64, 4096] {
            let mut ch = StreamChunker::open(&path, window).unwrap();
            for pos in 0..=data.len() as u64 + 2 {
                let want = find_record_start(&data, pos as usize).map(|s| s as u64);
                let got = ch.find_record_start_at(pos).unwrap();
                assert_eq!(got, want, "pos={pos} window={window}");
            }
        }
    }

    #[test]
    fn unpaired_ranges_match_in_memory_chunker() {
        let data = sample_bytes(30);
        let path = write_temp("unpaired.fastq", &data);
        for c in [1, 2, 3, 7, 13, 40] {
            let specs = chunk_fastq_bytes(&data, c).unwrap();
            let mut ch = StreamChunker::open(&path, 17).unwrap();
            let ranges = ch.ranges(c).unwrap();
            let want: Vec<(u64, u64)> = specs
                .iter()
                .map(|s| (s.offset, s.offset + s.bytes))
                .collect();
            assert_eq!(ranges, want, "c={c}");
        }
    }

    #[test]
    fn paired_resolution_matches_in_memory_chunker() {
        let data = sample_bytes(26);
        let path = write_temp("paired.fastq", &data);
        for c in [1, 2, 3, 5, 9, 30] {
            let specs = chunk_fastq_bytes_paired(&data, c).unwrap();
            let mut ch = StreamChunker::open(&path, 19).unwrap();
            let ranges = ch.tentative_ranges_paired(c).unwrap();
            let counts: Vec<u64> = ranges
                .iter()
                .map(|&(lo, hi)| count_record_starts(&data[lo as usize..hi as usize]))
                .collect();
            let chunks = ch.resolve_paired(&ranges, &counts).unwrap();
            assert_eq!(chunks.len(), specs.len(), "c={c}");
            for (got, want) in chunks.iter().zip(&specs) {
                assert_eq!(got.offset, want.offset, "c={c}");
                assert_eq!(got.bytes, want.bytes, "c={c}");
                assert_eq!(got.first_seq, want.first_seq as u64, "c={c}");
                assert_eq!(got.seqs, want.seqs as u64, "c={c}");
            }
        }
    }

    #[test]
    fn paired_odd_count_is_error() {
        let data = sample_bytes(5);
        let path = write_temp("odd.fastq", &data);
        let mut ch = StreamChunker::open(&path, 64).unwrap();
        let ranges = ch.tentative_ranges_paired(2).unwrap();
        let counts: Vec<u64> = ranges
            .iter()
            .map(|&(lo, hi)| count_record_starts(&data[lo as usize..hi as usize]))
            .collect();
        assert!(matches!(
            ch.resolve_paired(&ranges, &counts),
            Err(FastqError::Malformed { .. })
        ));
    }

    #[test]
    fn window_growth_fetches_each_byte_at_most_once() {
        // One oversized record (~1 KiB quality/sequence lines) behind a
        // 16-byte probe window: the probe must double several times. With
        // the old read-from-base loop the byte traffic was
        // 16 + 32 + ... + len ≈ 2×len per probe; tail-extension fetches
        // every byte at most once, so a single probe is bounded by len.
        let seq: Vec<u8> = b"ACGT".iter().cycle().take(1024).copied().collect();
        let mut s = ReadStore::new();
        s.push_single(&seq);
        s.push_single(b"ACGTACGT");
        let mut data = Vec::new();
        write_fastq(&mut data, &s).unwrap();
        let path = write_temp("big_record.fastq", &data);

        let mut ch = StreamChunker::open(&path, 16).unwrap();
        let got = ch.find_record_start_at(1).unwrap();
        let want = find_record_start(&data, 1).map(|s| s as u64);
        assert_eq!(got, want);
        assert!(
            ch.probe_bytes_read() <= data.len() as u64,
            "probe fetched {} bytes of a {}-byte file (tail-extension \
             must read each byte at most once)",
            ch.probe_bytes_read(),
            data.len()
        );
    }

    #[test]
    fn empty_file_yields_no_ranges() {
        let path = write_temp("empty.fastq", b"");
        let mut ch = StreamChunker::open(&path, 64).unwrap();
        assert!(ch.ranges(4).unwrap().is_empty());
        assert!(ch.tentative_ranges_paired(4).unwrap().is_empty());
    }

    #[test]
    fn read_range_recycles_buffer() {
        let data = sample_bytes(4);
        let path = write_temp("range.fastq", &data);
        let mut ch = StreamChunker::open(&path, 64).unwrap();
        let mut buf = Vec::new();
        ch.read_range(0, 10, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[..10]);
        let cap = buf.capacity();
        ch.read_range(2, 8, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[2..8]);
        assert_eq!(buf.capacity(), cap, "buffer must be reused, not regrown");
    }
}
