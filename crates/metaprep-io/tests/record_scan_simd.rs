//! Property-based differential test for the record-boundary scanner.
//!
//! `find_record_start` / `count_record_starts` hunt newlines through the
//! runtime-dispatched SIMD byte scanner (`metaprep_kmer::simd::find_byte`).
//! Here the whole scanner is checked against a byte-at-a-time reference on
//! adversarial inputs: well-formed FASTQ, quality lines starting with `@`,
//! junk bytes, and `@`/`+`/newline soup designed to hit every branch of
//! the record-start disambiguation. CI re-runs this suite with
//! `METAPREP_SIMD=scalar` so both dispatch routes are covered.

use metaprep_io::{count_record_starts, find_record_start};
use proptest::prelude::*;

/// Byte-at-a-time reference: same record-start definition (`@` line whose
/// line-after-next begins with `+`), no vectorized scanning.
fn naive_find_record_start(data: &[u8], pos: usize) -> Option<usize> {
    fn next_nl(data: &[u8], from: usize) -> Option<usize> {
        (from..data.len()).find(|&i| data[i] == b'\n')
    }
    if pos >= data.len() {
        return None;
    }
    let mut at = if pos == 0 {
        0
    } else {
        next_nl(data, pos - 1)? + 1
    };
    loop {
        if at >= data.len() {
            return None;
        }
        if data[at] == b'@' {
            let l1 = next_nl(data, at)? + 1;
            let l2 = next_nl(data, l1)? + 1;
            if l2 < data.len() && data[l2] == b'+' {
                return Some(at);
            }
        }
        at = next_nl(data, at)? + 1;
    }
}

fn naive_count_record_starts(data: &[u8]) -> u64 {
    let mut count = 0u64;
    let mut at = 0usize;
    while let Some(s) = naive_find_record_start(data, at) {
        count += 1;
        at = s + 1;
    }
    count
}

/// Serialize reads as strict 4-line FASTQ; quality strings deliberately
/// start with `@` so the quality-line/header-line ambiguity is exercised.
fn fastq_bytes(reads: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    for (i, seq) in reads.iter().enumerate() {
        out.extend_from_slice(format!("@r{i}\n").as_bytes());
        out.extend_from_slice(seq);
        out.push(b'\n');
        out.extend_from_slice(b"+\n");
        out.push(b'@');
        out.extend(std::iter::repeat_n(b'J', seq.len().saturating_sub(1)));
        out.push(b'\n');
    }
    out
}

/// Structural soup: heavy on the bytes the scanner branches on.
fn soup() -> impl Strategy<Value = Vec<u8>> {
    const STRUCTURAL: &[u8] = b"@+\nACGTN";
    let byte = (0u8..4, any::<u8>()).prop_map(|(class, raw)| match class {
        0..=2 => STRUCTURAL[raw as usize % STRUCTURAL.len()],
        _ => raw,
    });
    proptest::collection::vec(byte, 0..300)
}

proptest! {
    /// Scanner output equals the naive reference on FASTQ followed by
    /// soup, from every probe position.
    #[test]
    fn prop_find_record_start_matches_naive(
        reads in proptest::collection::vec(
            proptest::collection::vec(
                proptest::sample::select(b"ACGTN".to_vec()), 1..40),
            0..6),
        tail in soup(),
        pos in 0usize..600,
    ) {
        let mut data = fastq_bytes(&reads);
        data.extend_from_slice(&tail);
        prop_assert_eq!(
            find_record_start(&data, pos),
            naive_find_record_start(&data, pos)
        );
    }

    /// Start counting agrees with the naive reference on pure soup.
    #[test]
    fn prop_count_record_starts_matches_naive(data in soup()) {
        prop_assert_eq!(count_record_starts(&data), naive_count_record_starts(&data));
    }

    /// On well-formed FASTQ the count is exactly the number of records.
    #[test]
    fn prop_count_on_wellformed_fastq(
        reads in proptest::collection::vec(
            proptest::collection::vec(
                proptest::sample::select(b"ACGTN".to_vec()), 1..40),
            0..8),
    ) {
        let data = fastq_bytes(&reads);
        prop_assert_eq!(count_record_starts(&data), reads.len() as u64);
    }
}
