//! Offline vendored shim for `crossbeam::channel`, backed by
//! `std::sync::mpsc`.
//!
//! Beyond the crossbeam API subset the workspace uses (`unbounded`,
//! `Sender::send`, `Receiver::recv`/`recv_timeout`/`try_recv`, `len`),
//! the shim maintains an atomic queue-depth counter per channel and
//! exposes it as a cheap shared probe ([`Receiver::depth_probe`]).
//! `metaprep-dist`'s deadlock watchdog uses the probes to test "every
//! inbox is empty" without taking ownership of the receivers.

pub mod channel {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{mpsc, Arc};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Shared queue-depth counter for one channel. The count is updated
    /// after enqueue and after dequeue, so a reading of `0` can be stale
    /// only in the direction of "a message is in flight" — the watchdog
    /// re-samples before declaring deadlock.
    #[derive(Clone, Debug)]
    pub struct DepthProbe(Arc<AtomicUsize>);

    impl DepthProbe {
        /// Current number of queued messages.
        pub fn len(&self) -> usize {
            // ORDERING: monitoring only — the probe never synchronizes
            // message payloads, so relaxed reads suffice.
            self.0.load(Ordering::Relaxed)
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Sending half (shim of `crossbeam::channel::Sender`).
    pub struct Sender<T> {
        tx: mpsc::Sender<T>,
        depth: Arc<AtomicUsize>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                tx: self.tx.clone(),
                depth: Arc::clone(&self.depth),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            // ORDERING: the mpsc channel itself synchronizes the payload;
            // the depth counter is monitoring-only.
            self.depth.fetch_add(1, Ordering::Relaxed);
            let r = self.tx.send(value);
            if r.is_err() {
                self.depth.fetch_sub(1, Ordering::Relaxed);
            }
            r
        }

        /// Number of queued messages (crossbeam API).
        pub fn len(&self) -> usize {
            self.depth.load(Ordering::Relaxed)
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Receiving half (shim of `crossbeam::channel::Receiver`).
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
        depth: Arc<AtomicUsize>,
    }

    impl<T> Receiver<T> {
        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let v = self.rx.recv()?;
            self.depth.fetch_sub(1, Ordering::Relaxed);
            Ok(v)
        }

        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let v = self.rx.recv_timeout(timeout)?;
            self.depth.fetch_sub(1, Ordering::Relaxed);
            Ok(v)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let v = self.rx.try_recv()?;
            self.depth.fetch_sub(1, Ordering::Relaxed);
            Ok(v)
        }

        /// Number of queued messages (crossbeam API).
        pub fn len(&self) -> usize {
            self.depth.load(Ordering::Relaxed)
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Clone of this channel's queue-depth counter (shim extension;
        /// not part of the real crossbeam API).
        pub fn depth_probe(&self) -> DepthProbe {
            DepthProbe(Arc::clone(&self.depth))
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        let depth = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                tx,
                depth: Arc::clone(&depth),
            },
            Receiver { rx, depth },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            assert_eq!(rx.len(), 10);
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
            assert!(rx.is_empty());
        }

        #[test]
        fn depth_probe_tracks_queue() {
            let (tx, rx) = unbounded();
            let probe = rx.depth_probe();
            assert!(probe.is_empty());
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(probe.len(), 2);
            rx.recv().unwrap();
            assert_eq!(probe.len(), 1);
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = unbounded::<u8>();
            let err = rx.recv_timeout(Duration::from_millis(5)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)).unwrap_err(),
                RecvTimeoutError::Disconnected
            );
        }

        #[test]
        fn works_across_threads() {
            let (tx, rx) = unbounded();
            std::thread::spawn(move || tx.send(99).unwrap());
            assert_eq!(rx.recv().unwrap(), 99);
        }
    }
}
