//! Offline vendored shim for the subset of `criterion` used by
//! `metaprep-bench`. It keeps benchmark sources compiling and running
//! (timing loops with median-of-samples reporting to stdout) without the
//! real crate's statistics, plotting, or CLI.

use std::time::{Duration, Instant};

/// Prevent the optimizer from eliding a value (shim of
/// `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch-size hint for [`Bencher::iter_batched`] (ignored by the shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    last_median: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly; records the median sample.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            times.push(t0.elapsed());
        }
        times.sort_unstable();
        self.last_median = times[times.len() / 2];
    }

    /// Time `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            times.push(t0.elapsed());
        }
        times.sort_unstable();
        self.last_median = times[times.len() / 2];
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of timing samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<N: Into<String>>(
        &mut self,
        id: N,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(full, self.sample_size, self.throughput, f);
        let _ = &self.criterion;
        self
    }

    /// Finish the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

/// Top-level driver (shim of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Open a benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let sample_size = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(id.to_string(), 10, None, f);
        self
    }
}

fn run_one(
    id: String,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples,
        last_median: Duration::ZERO,
    };
    f(&mut b);
    let med = b.last_median;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if med > Duration::ZERO => {
            format!(
                "  {:.1} MiB/s",
                n as f64 / med.as_secs_f64() / (1 << 20) as f64
            )
        }
        Some(Throughput::Elements(n)) if med > Duration::ZERO => {
            format!("  {:.2} Melem/s", n as f64 / med.as_secs_f64() / 1e6)
        }
        _ => String::new(),
    };
    println!("bench {id:<50} median {med:?}{rate}");
}

/// Shim of `criterion_group!`: collects benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Shim of `criterion_main!`: runs the groups from `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 100],
                |v| v.into_iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
