//! Offline vendored shim for the subset of `proptest` this workspace
//! uses: the `proptest!` macro, range / tuple / `vec` / `select` /
//! `any` strategies, `prop_map`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Semantics versus the real crate:
//!
//! * cases are generated from a **fixed seed**, so runs are fully
//!   deterministic and CI-stable (the real proptest persists failing
//!   seeds instead);
//! * there is **no shrinking** — a failure reports the case index and
//!   seed, and re-running reproduces it exactly;
//! * `prop_assert!` panics immediately rather than returning a
//!   `TestCaseResult`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! Glob-import target mirroring `proptest::prelude`.
    pub use crate::{any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runner configuration (shim of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A value generator (shim of `proptest::strategy::Strategy`).
///
/// Strategies are sampled, never shrunk, so the trait is just "generate
/// one value from an RNG".
pub trait Strategy {
    /// Type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<F, R>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> R,
    {
        Map { base: self, f }
    }
}

/// `prop_map` adaptor.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, R> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R;
    fn generate(&self, rng: &mut SmallRng) -> R {
        (self.f)(self.base.generate(rng))
    }
}

/// Constant strategy (shim of `proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// `any::<T>()` support (shim of `proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.gen::<u64>() & 1 == 1
    }
}

/// Strategy for the full domain of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// Unconstrained values of `T` (shim of `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies (shim of `proptest::collection`).
    use super::{SmallRng, Strategy};
    use rand::Rng;

    /// Length specification: an exact size or a half-open range.
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut SmallRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut SmallRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut SmallRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (shim of `proptest::sample`).
    use super::{SmallRng, Strategy};
    use rand::Rng;

    /// Uniform choice among `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: empty options");
        Select { options }
    }

    /// Strategy returned by [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

pub mod bool {
    //! Boolean strategies (shim of `proptest::bool`).
    use super::{Any, Arbitrary};

    /// Uniform `true`/`false`.
    #[allow(non_upper_case_globals)]
    pub const ANY: Any<::core::primitive::bool> = Any {
        _marker: std::marker::PhantomData,
    };

    const _: () = {
        // Compile-time check that bool stays Arbitrary.
        fn _assert<T: Arbitrary>() {}
        let _ = _assert::<::core::primitive::bool>;
    };
}

/// Test-runner used by the `proptest!` macro expansion. Runs `cases`
/// deterministic cases; on panic, re-raises with the case index and seed
/// appended so the failure can be reproduced exactly.
pub fn run_property<F: FnMut(&mut SmallRng)>(config: &ProptestConfig, name: &str, mut case: F) {
    const BASE_SEED: u64 = 0x0001_1E7A_9E17;
    for i in 0..config.cases {
        let seed = BASE_SEED ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = SmallRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case(&mut rng);
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "proptest shim: property '{name}' failed on case {i}/{} (seed {seed:#x})",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Shim of `prop_assert!`: panics on failure (no `TestCaseResult`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Shim of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Shim of `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Shim of the `proptest!` macro: expands each property into a `#[test]`
/// that samples every bound strategy per case and runs the body.
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(&config, stringify!($name), |rng| {
                    $(
                        let $pat = $crate::Strategy::generate(&($strat), rng);
                    )*
                    $body
                });
            }
        )*
    };
    // Without a config header.
    (
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$attr])*
                fn $name($($pat in $strat),*) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 10u32..20, y in 0usize..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in crate::collection::vec((0u32..10, 0u32..10), 0..50),
        ) {
            prop_assert!(v.len() < 50);
            for (a, b) in v {
                prop_assert!(a < 10 && b < 10);
            }
        }

        #[test]
        fn select_and_prop_map(
            c in crate::sample::select(vec![1u8, 2, 3]).prop_map(|x| x * 10),
        ) {
            prop_assert!([10, 20, 30].contains(&c));
        }

        #[test]
        fn any_u64_varies(a in any::<u64>(), b in any::<u64>()) {
            // Not a tautology: a == b would signal a broken RNG pipe.
            let _ = (a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_header_accepted(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        let config = ProptestConfig::with_cases(5);
        crate::run_property(&config, "capture1", |rng| {
            first.push(crate::Strategy::generate(&(0u64..1000), rng));
        });
        crate::run_property(&config, "capture2", |rng| {
            second.push(crate::Strategy::generate(&(0u64..1000), rng));
        });
        assert_eq!(first, second);
    }
}
