//! Offline vendored shim for the subset of the `bytes` crate used by
//! `metaprep-index`'s index serialization: little-endian put/get of
//! `u32`/`u64` through the `Buf`/`BufMut` traits, on `&[u8]` readers and
//! `Vec<u8>` writers.

/// Read side (shim of `bytes::Buf`). Implemented for `&[u8]`, which
/// advances in place like the real blanket impl.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copy `dst.len()` bytes out and advance. Panics if short.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read a little-endian `u32` and advance.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64` and advance.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a single byte and advance.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write side (shim of `bytes::BufMut`). Implemented for `Vec<u8>`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32_u64() {
        let mut buf = Vec::new();
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_u8(7);
        let mut rd: &[u8] = &buf;
        assert_eq!(rd.remaining(), 13);
        assert_eq!(rd.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(rd.get_u8(), 7);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut rd: &[u8] = &[1, 2];
        rd.get_u32_le();
    }
}
