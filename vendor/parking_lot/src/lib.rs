//! Offline vendored shim for the subset of `parking_lot` this workspace
//! uses, backed by `std::sync` primitives.
//!
//! Differences from the real crate that matter here: none — the shim
//! preserves parking_lot's poison-free semantics by recovering the inner
//! value from a poisoned std lock (a panic while holding the lock does
//! not poison subsequent accesses).

use std::sync::{self, PoisonError};

/// Shim of `parking_lot::Mutex`: non-poisoning, infallible `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, ignoring poison (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Shim of `parking_lot::RwLock`: non-poisoning, infallible accessors.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap `value` in a reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
