//! Offline vendored shim for the subset of `rayon` this workspace uses.
//!
//! Instead of a work-stealing pool, every terminal operation
//! (`for_each`, `collect`) splits its input into `current_num_threads()`
//! contiguous parts and runs each part on a scoped OS thread. That
//! preserves the two properties the workspace's algorithms rely on:
//!
//! * **real concurrency** — parts execute on distinct OS threads, so the
//!   lock-free union-find and scatter kernels are genuinely raced;
//! * **deterministic chunking** — both sides of a `zip` split at
//!   identical boundaries, so zipped parts stay aligned.
//!
//! `ThreadPool::install` only scopes the advertised thread count (the
//! simulated "OpenMP threads per MPI task" of `metaprep-dist`); threads
//! are spawned per call, which is slower than real rayon but identical
//! in semantics for fork/join shaped work.

use std::cell::Cell;

pub mod iter;

pub mod prelude {
    //! Glob-import target mirroring `rayon::prelude`.
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
        ParallelSlice,
    };
}

thread_local! {
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads terminal operations will fan out to on this thread.
///
/// Inside [`ThreadPool::install`] this is the pool's configured size;
/// elsewhere it is the machine's available parallelism, floored at 2 so
/// concurrency-sensitive code is still exercised on single-core CI boxes.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|p| {
        p.get().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(2)
        })
    })
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by the shim,
/// kept for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Shim of `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the pool's thread count.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Materialize the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => current_num_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// Shim of `rayon::ThreadPool`: a scoped thread-count context rather
/// than a set of persistent workers.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `f` with [`current_num_threads`] reporting this pool's size.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        POOL_THREADS.with(|p| {
            let prev = p.replace(Some(self.num_threads));
            let out = f();
            p.set(prev);
            out
        })
    }
}

/// Run two closures, potentially in parallel, returning both results
/// (shim of `rayon::join`).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let v: Vec<u32> = (0..10_000).collect();
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_filter_collect() {
        let v: Vec<u32> = (0..1000).collect();
        let evens: Vec<u32> = v.par_iter().copied().filter(|x| x % 2 == 0).collect();
        assert_eq!(evens, (0..1000).filter(|x| x % 2 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0usize..100).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn zip_stays_aligned() {
        let a: Vec<u32> = (0..5000).collect();
        let b: Vec<u32> = (0..5000).map(|x| x * 10).collect();
        let sums: Vec<u32> = a
            .par_iter()
            .zip(b.into_par_iter())
            .map(|(&x, y)| x + y)
            .collect();
        assert_eq!(sums, (0..5000).map(|x| x * 11).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_runs_every_item() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let total = AtomicU64::new(0);
        let v: Vec<u64> = (1..=1000).collect();
        // ORDERING: test-only counter, no data is published through it.
        v.par_iter().for_each(|&x| {
            total.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 500_500);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let v: Vec<u32> = (0..64).collect();
        v.par_iter().for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::yield_now();
        });
        // With >= 2 shim threads and 64 items there must be >= 2 ids.
        assert!(ids.into_inner().unwrap().len() >= 2);
    }
}
