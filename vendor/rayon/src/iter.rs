//! Parallel-iterator shim: indexable sources split into contiguous parts,
//! adaptors wrap each part's sequential iterator, terminal ops run parts
//! on scoped OS threads and reassemble results in order.

use std::sync::Arc;

/// Split an input of length `len` into at most `parts` contiguous chunk
/// lengths. All sources use this single formula so that `zip`-ed sides
/// split at identical boundaries.
fn chunk_lens(len: usize, parts: usize) -> Vec<usize> {
    if len == 0 {
        return Vec::new();
    }
    let chunk = len.div_ceil(parts.max(1));
    let mut out = Vec::new();
    let mut rem = len;
    while rem > 0 {
        let c = chunk.min(rem);
        out.push(c);
        rem -= c;
    }
    out
}

/// A parallel iterator: something that can split itself into ordered
/// sequential parts, each safe to run on its own thread.
pub trait ParallelIterator: Sized + Send {
    /// Item produced by the iterator.
    type Item: Send;
    /// Sequential iterator for one part.
    type Part: Iterator<Item = Self::Item> + Send;

    /// Split into at most `parts` ordered sequential parts.
    fn split(self, parts: usize) -> Vec<Self::Part>;

    /// Exact remaining length, if this iterator preserves it (`filter`
    /// does not; `zip` requires it on both sides).
    fn exact_len(&self) -> Option<usize>;

    /// Map each item through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send,
        R: Send,
    {
        Map {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Keep items for which `f` returns true.
    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Map each item to a sequential iterator and flatten.
    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        F: Fn(Self::Item) -> U + Sync + Send,
        U: IntoIterator,
        U::Item: Send,
    {
        FlatMapIter {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Copy out of `&T` items.
    fn copied<'a, T>(self) -> Copied<Self>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: Copy + Send + Sync + 'a,
    {
        Copied { base: self }
    }

    /// Clone out of `&T` items.
    fn cloned<'a, T>(self) -> Cloned<Self>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: Clone + Send + Sync + 'a,
    {
        Cloned { base: self }
    }

    /// Pair up with `other` positionally. Both sides must preserve exact
    /// lengths and the lengths must match.
    fn zip<B>(self, other: B) -> Zip<Self, B>
    where
        B: ParallelIterator,
    {
        let (a, b) = (self.exact_len(), other.exact_len());
        assert_eq!(
            a.expect("zip: left side lost exact length (filter before zip?)"),
            b.expect("zip: right side lost exact length (filter before zip?)"),
            "zip: length mismatch"
        );
        Zip { a: self, b: other }
    }

    /// Run `f` on every item across threads.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let parts = self.split(crate::current_num_threads());
        std::thread::scope(|s| {
            let f = &f;
            let handles: Vec<_> = parts
                .into_iter()
                .map(|p| s.spawn(move || p.for_each(f)))
                .collect();
            for h in handles {
                h.join().expect("parallel for_each worker panicked");
            }
        });
    }

    /// Collect all items, preserving input order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Fold all items with `op`, seeding each part with `identity()`.
    fn reduce<OP, ID>(self, identity: ID, op: OP) -> Self::Item
    where
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
        ID: Fn() -> Self::Item + Sync + Send,
    {
        let parts = self.split(crate::current_num_threads());
        std::thread::scope(|s| {
            let (op, identity) = (&op, &identity);
            let handles: Vec<_> = parts
                .into_iter()
                .map(|p| s.spawn(move || p.fold(identity(), op)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel reduce worker panicked"))
                .fold(identity(), op)
        })
    }

    /// Sum all items across threads.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let parts = self.split(crate::current_num_threads());
        std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|p| s.spawn(move || p.sum::<S>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel sum worker panicked"))
                .sum()
        })
    }

    /// Largest item, if any.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        let parts = self.split(crate::current_num_threads());
        std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|p| s.spawn(move || p.max()))
                .collect();
            handles
                .into_iter()
                .filter_map(|h| h.join().expect("parallel max worker panicked"))
                .max()
        })
    }
}

/// Types constructible from a parallel iterator (shim of rayon's trait).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build the collection, preserving the iterator's order.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let parts = iter.split(crate::current_num_threads());
        std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|p| s.spawn(move || p.collect::<Vec<T>>()))
                .collect();
            let mut out = Vec::new();
            for h in handles {
                out.extend(h.join().expect("parallel collect worker panicked"));
            }
            out
        })
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item produced.
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a borrowing parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Item produced (a reference).
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing conversion.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Slice-specific parallel views (shim of rayon's `ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    /// Overlapping windows of length `size`, in parallel.
    fn par_windows(&self, size: usize) -> WindowsPar<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_windows(&self, size: usize) -> WindowsPar<'_, T> {
        assert!(size > 0, "par_windows: window size must be non-zero");
        WindowsPar { slice: self, size }
    }
}

/// Overlapping-windows source.
pub struct WindowsPar<'a, T> {
    slice: &'a [T],
    size: usize,
}

/// Sequential part of [`WindowsPar`].
pub struct WindowsPart<'a, T> {
    slice: &'a [T],
    size: usize,
    range: std::ops::Range<usize>,
}

impl<'a, T> Iterator for WindowsPart<'a, T> {
    type Item = &'a [T];
    fn next(&mut self) -> Option<&'a [T]> {
        let i = self.range.next()?;
        Some(&self.slice[i..i + self.size])
    }
}

impl<'a, T: Sync + 'a> ParallelIterator for WindowsPar<'a, T> {
    type Item = &'a [T];
    type Part = WindowsPart<'a, T>;

    fn split(self, parts: usize) -> Vec<Self::Part> {
        let count = self.slice.len().saturating_sub(self.size - 1);
        let lens = chunk_lens(count, parts);
        let mut start = 0usize;
        lens.into_iter()
            .map(|l| {
                let part = WindowsPart {
                    slice: self.slice,
                    size: self.size,
                    range: start..start + l,
                };
                start += l;
                part
            })
            .collect()
    }

    fn exact_len(&self) -> Option<usize> {
        Some(self.slice.len().saturating_sub(self.size - 1))
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SlicePar<'a, T>;
    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SlicePar<'a, T>;
    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = SlicePar<'a, T>;
    fn into_par_iter(self) -> SlicePar<'a, T> {
        SlicePar { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = SlicePar<'a, T>;
    fn into_par_iter(self) -> SlicePar<'a, T> {
        SlicePar { slice: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecPar<T>;
    fn into_par_iter(self) -> VecPar<T> {
        VecPar { vec: self }
    }
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = RangePar<$t>;
            fn into_par_iter(self) -> RangePar<$t> {
                RangePar { range: self }
            }
        }
    )*};
}
impl_range_par!(u32, u64, usize, i32, i64);

/// Borrowed-slice source.
pub struct SlicePar<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync + 'a> ParallelIterator for SlicePar<'a, T> {
    type Item = &'a T;
    type Part = std::slice::Iter<'a, T>;

    fn split(self, parts: usize) -> Vec<Self::Part> {
        let lens = chunk_lens(self.slice.len(), parts);
        let mut rest = self.slice;
        lens.into_iter()
            .map(|l| {
                let (head, tail) = rest.split_at(l);
                rest = tail;
                head.iter()
            })
            .collect()
    }

    fn exact_len(&self) -> Option<usize> {
        Some(self.slice.len())
    }
}

/// Owned-vector source.
pub struct VecPar<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecPar<T> {
    type Item = T;
    type Part = std::vec::IntoIter<T>;

    fn split(mut self, parts: usize) -> Vec<Self::Part> {
        let lens = chunk_lens(self.vec.len(), parts);
        let mut out: Vec<Self::Part> = Vec::with_capacity(lens.len());
        // Split back-to-front so each split_off is O(part).
        for &l in lens.iter().rev() {
            let tail = self.vec.split_off(self.vec.len() - l);
            out.push(tail.into_iter());
        }
        out.reverse();
        out
    }

    fn exact_len(&self) -> Option<usize> {
        Some(self.vec.len())
    }
}

/// Integer-range source.
pub struct RangePar<T> {
    range: std::ops::Range<T>,
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangePar<$t> {
            type Item = $t;
            type Part = std::ops::Range<$t>;

            fn split(self, parts: usize) -> Vec<Self::Part> {
                let len = (self.range.end.max(self.range.start) - self.range.start) as usize;
                let lens = chunk_lens(len, parts);
                let mut start = self.range.start;
                lens.into_iter()
                    .map(|l| {
                        let end = start + l as $t;
                        let part = start..end;
                        start = end;
                        part
                    })
                    .collect()
            }

            fn exact_len(&self) -> Option<usize> {
                Some((self.range.end.max(self.range.start) - self.range.start) as usize)
            }
        }
    )*};
}
impl_range_par_iter!(u32, u64, usize, i32, i64);

/// `map` adaptor.
pub struct Map<I, F> {
    base: I,
    f: Arc<F>,
}

/// Sequential part of [`Map`].
pub struct MapPart<P, F> {
    part: P,
    f: Arc<F>,
}

impl<P, F, R> Iterator for MapPart<P, F>
where
    P: Iterator,
    F: Fn(P::Item) -> R,
{
    type Item = R;
    fn next(&mut self) -> Option<R> {
        self.part.next().map(|x| (self.f)(x))
    }
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;
    type Part = MapPart<I::Part, F>;

    fn split(self, parts: usize) -> Vec<Self::Part> {
        let f = self.f;
        self.base
            .split(parts)
            .into_iter()
            .map(|part| MapPart {
                part,
                f: Arc::clone(&f),
            })
            .collect()
    }

    fn exact_len(&self) -> Option<usize> {
        self.base.exact_len()
    }
}

/// `flat_map_iter` adaptor.
pub struct FlatMapIter<I, F> {
    base: I,
    f: Arc<F>,
}

/// Sequential part of [`FlatMapIter`].
pub struct FlatMapIterPart<P, F, U: IntoIterator> {
    part: P,
    f: Arc<F>,
    cur: Option<U::IntoIter>,
}

impl<P, F, U> Iterator for FlatMapIterPart<P, F, U>
where
    P: Iterator,
    F: Fn(P::Item) -> U,
    U: IntoIterator,
{
    type Item = U::Item;
    fn next(&mut self) -> Option<U::Item> {
        loop {
            if let Some(inner) = &mut self.cur {
                if let Some(x) = inner.next() {
                    return Some(x);
                }
            }
            self.cur = Some((self.f)(self.part.next()?).into_iter());
        }
    }
}

impl<I, F, U> ParallelIterator for FlatMapIter<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> U + Sync + Send,
    U: IntoIterator,
    U::Item: Send,
    U::IntoIter: Send,
{
    type Item = U::Item;
    type Part = FlatMapIterPart<I::Part, F, U>;

    fn split(self, parts: usize) -> Vec<Self::Part> {
        let f = self.f;
        self.base
            .split(parts)
            .into_iter()
            .map(|part| FlatMapIterPart {
                part,
                f: Arc::clone(&f),
                cur: None,
            })
            .collect()
    }

    fn exact_len(&self) -> Option<usize> {
        None
    }
}

/// `filter` adaptor.
pub struct Filter<I, F> {
    base: I,
    f: Arc<F>,
}

/// Sequential part of [`Filter`].
pub struct FilterPart<P, F> {
    part: P,
    f: Arc<F>,
}

impl<P, F> Iterator for FilterPart<P, F>
where
    P: Iterator,
    F: Fn(&P::Item) -> bool,
{
    type Item = P::Item;
    fn next(&mut self) -> Option<P::Item> {
        self.part.by_ref().find(|x| (self.f)(x))
    }
}

impl<I, F> ParallelIterator for Filter<I, F>
where
    I: ParallelIterator,
    F: Fn(&I::Item) -> bool + Sync + Send,
{
    type Item = I::Item;
    type Part = FilterPart<I::Part, F>;

    fn split(self, parts: usize) -> Vec<Self::Part> {
        let f = self.f;
        self.base
            .split(parts)
            .into_iter()
            .map(|part| FilterPart {
                part,
                f: Arc::clone(&f),
            })
            .collect()
    }

    fn exact_len(&self) -> Option<usize> {
        None
    }
}

/// `copied` adaptor.
pub struct Copied<I> {
    base: I,
}

impl<'a, I, T> ParallelIterator for Copied<I>
where
    I: ParallelIterator<Item = &'a T>,
    T: Copy + Send + Sync + 'a,
{
    type Item = T;
    type Part = std::iter::Copied<I::Part>;

    fn split(self, parts: usize) -> Vec<Self::Part> {
        self.base
            .split(parts)
            .into_iter()
            .map(Iterator::copied)
            .collect()
    }

    fn exact_len(&self) -> Option<usize> {
        self.base.exact_len()
    }
}

/// `cloned` adaptor.
pub struct Cloned<I> {
    base: I,
}

impl<'a, I, T> ParallelIterator for Cloned<I>
where
    I: ParallelIterator<Item = &'a T>,
    T: Clone + Send + Sync + 'a,
{
    type Item = T;
    type Part = std::iter::Cloned<I::Part>;

    fn split(self, parts: usize) -> Vec<Self::Part> {
        self.base
            .split(parts)
            .into_iter()
            .map(Iterator::cloned)
            .collect()
    }

    fn exact_len(&self) -> Option<usize> {
        self.base.exact_len()
    }
}

/// `zip` adaptor. Relies on every length-preserving source splitting via
/// [`chunk_lens`], which keeps both sides' part boundaries identical.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    type Part = std::iter::Zip<A::Part, B::Part>;

    fn split(self, parts: usize) -> Vec<Self::Part> {
        let pa = self.a.split(parts);
        let pb = self.b.split(parts);
        assert_eq!(pa.len(), pb.len(), "zip: misaligned part counts");
        pa.into_iter().zip(pb).map(|(x, y)| x.zip(y)).collect()
    }

    fn exact_len(&self) -> Option<usize> {
        self.a.exact_len()
    }
}
