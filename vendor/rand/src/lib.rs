//! Offline vendored shim for the subset of the `rand` 0.8 API this
//! workspace uses: `SmallRng`, `SeedableRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range` (half-open and inclusive integer ranges, `f64`
//! ranges), and `Rng::gen_bool`.
//!
//! The build container has no crates.io access, so the workspace ships
//! its own implementations of the third-party APIs it depends on (see
//! `DESIGN.md`, "Safety & verification"). The generator is
//! xoshiro256++ seeded through SplitMix64 — the same construction the
//! real `SmallRng` uses on 64-bit targets — so statistical quality is
//! adequate for tests, synthetic data, and benchmarks. It is **not**
//! cryptographically secure, exactly like the API it replaces.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Range-like argument to [`Rng::gen_range`] (shim of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_range_inclusive(rng, lo, hi)
    }
}

/// Core entropy source (shim of `rand::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (shim of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
            ) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i64 as u64).wrapping_sub(lo as i64 as u64);
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
            ) -> Self {
                let span = (hi as i64 as u64).wrapping_sub(lo as i64 as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(i32, i64);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Unbiased uniform draw from `[0, n)`; `n == 0` means the full 2^64 range.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    if n == 0 {
        return rng.next_u64();
    }
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Rejection sampling on the top of the range to remove modulo bias.
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

/// Small fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the shim's stand-in for `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility with `rand::rngs::StdRng`.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u32..=7);
            assert!((5..=7).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
