//! Offline vendored **mini-loom**: a model checker that explores the
//! thread interleavings of programs whose cross-thread communication
//! goes through this crate's atomics, channels, and mutexes.
//!
//! The API mirrors the subset of the real `loom` crate this workspace
//! uses (`model`, `thread::spawn`/`yield_now`, `sync::atomic`,
//! `sync::mpsc`, `sync::Mutex`), so code written against the workspace
//! `sync` shims compiles unchanged under `--cfg loom`.
//!
//! # How it works
//!
//! Execution is fully **serialized by a token scheduler**: exactly one
//! modeled thread runs at a time, and every *visible operation*
//! (atomic access, channel send/receive/endpoint-drop, mutex
//! lock/unlock, `yield_now`, thread join/exit) is a scheduling point
//! that **declares the access it is about to perform** — which object,
//! read or write. At each point the scheduler consults the
//! [`dpor`] explorer, which either replays its decision stack or
//! extends it, so successive calls of the model body walk the
//! reduced-but-complete set of interleavings.
//!
//! The exploration uses **dynamic partial-order reduction with sleep
//! sets** (see the [`dpor`] module docs): instead of branching on
//! every Ready thread at every decision, backtrack points are inserted
//! only where two accesses *race* (same object, at least one write,
//! unordered by happens-before), and sleep sets suppress re-exploring
//! orders of independent operations. Every Mazurkiewicz trace — and
//! therefore every reachable final state and assertion failure — is
//! still covered; `Builder { dpor: false }` switches back to
//! brute-force full enumeration, which the differential soundness
//! harness uses as its reference. [`model::Builder::check_report`]
//! surfaces explored/sleep-blocked/backtrack counters.
//!
//! Blocking operations (empty-channel receive, join on a live thread,
//! locking a held mutex) deschedule the thread. If every live thread
//! is descheduled the model **reports the deadlock** — per-thread
//! state included — instead of hanging, mirroring the runtime watchdog
//! in `metaprep-dist::cluster`.
//!
//! # Fidelity
//!
//! The explored semantics are **sequential consistency**. Memory
//! orderings are accepted and ignored: every interleaving of visible
//! ops is explored (up to DPOR equivalence), but relaxed/acquire-
//! release *reorderings* are not modeled (the real loom models them
//! partially; a full C11 model needs CDSChecker-style machinery). The
//! ordering-audit lint in `xtask` exists precisely because this gap
//! must be covered by review.

pub mod dpor;
pub mod model;
pub mod sched;
pub mod sync;
pub mod thread;

pub use model::model;

/// Spin-loop hint (pure schedule point under the model).
pub mod hint {
    /// Yields to the scheduler, like `std::hint::spin_loop` in spirit.
    pub fn spin_loop() {
        crate::sched::with_scheduler(|s, me| s.schedule_point(me, crate::dpor::Access::PURE));
    }
}
