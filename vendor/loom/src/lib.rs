//! Offline vendored **mini-loom**: a model checker that exhaustively
//! explores thread interleavings of programs whose cross-thread
//! communication goes through this crate's atomics and channels.
//!
//! The API mirrors the subset of the real `loom` crate this workspace
//! uses (`model`, `thread::spawn`/`yield_now`, `sync::atomic`,
//! `sync::mpsc`), so code written against the workspace `sync` shims
//! compiles unchanged under `--cfg loom`.
//!
//! # How it works
//!
//! Execution is fully **serialized by a token scheduler**: exactly one
//! modeled thread runs at a time, and every *visible operation* (atomic
//! access, channel send/receive, `yield_now`, thread join/exit) is a
//! scheduling point. At each point the scheduler consults a DFS
//! enumeration state and either follows a replay prefix or extends it,
//! so successive calls of the model body walk every reachable
//! interleaving of visible operations.
//!
//! Blocking operations (empty-channel receive, join on a live thread)
//! deschedule the thread. If every live thread is descheduled the model
//! **reports the deadlock** — per-thread state included — instead of
//! hanging, mirroring the runtime watchdog in `metaprep-dist::cluster`.
//!
//! # Fidelity
//!
//! The explored semantics are **sequential consistency**. Memory
//! orderings are accepted and ignored: every interleaving of visible
//! ops is explored, but relaxed/acquire-release *reorderings* are not
//! modeled (the real loom models them partially; a full C11 model needs
//! CDSChecker-style machinery). The ordering-audit lint in `xtask`
//! exists precisely because this gap must be covered by review.

pub mod model;
pub mod sched;
pub mod sync;
pub mod thread;

pub use model::model;

/// Spin-loop hint (schedule point under the model).
pub mod hint {
    /// Yields to the scheduler, like `std::hint::spin_loop` in spirit.
    pub fn spin_loop() {
        crate::sched::with_scheduler(|s, me| s.schedule_point(me));
    }
}
