//! Dynamic partial-order reduction (DPOR) with sleep sets, in the style
//! of Flanagan–Godefroid, driving the token scheduler's decisions.
//!
//! Instead of brute-force branching on every Ready thread at every
//! scheduling decision, the [`Explorer`]:
//!
//! 1. tracks, per synchronization object, the last write and the reads
//!    since it (each with the vector clock of the executing event);
//! 2. when the event it just executed *races* with an earlier event
//!    (same object, at least one write, not ordered by happens-before),
//!    inserts a backtrack point at the earlier event's pre-state so the
//!    alternative order gets explored in a later run; and
//! 3. keeps a *sleep set* of threads whose next operation was already
//!    fully explored from an equivalent state, refusing to schedule
//!    them until a dependent operation executes. A run whose every
//!    enabled thread is asleep is *sleep-blocked*: provably redundant,
//!    aborted and counted separately from explored schedules.
//!
//! # Soundness
//!
//! Dependence is **overstated** wherever the exact footprint is
//! unclear: every channel operation (send, receive attempt, try_recv,
//! endpoint drop) is a write on its channel object, mutex lock/unlock
//! are writes on the lock object, and objects created outside a model
//! run alias a single id. Overstated dependence can only *add*
//! explored schedules, never lose one. Happens-before edges used for
//! pruning are all true orderings of the replayed execution: spawn
//! (child inherits the spawner's clock), join (joiner absorbs the
//! target's exit clock), and per-object event chains. Under the
//! model's sequential-consistency semantics the reduction therefore
//! preserves the set of reachable final states and assertion failures
//! up to Mazurkiewicz-trace equivalence; `tests/dpor_soundness.rs`
//! checks exactly that differentially against full enumeration
//! (`Builder { dpor: false }`), which this module also implements by
//! seeding every node's backtrack set with all enabled threads and
//! keeping sleep sets empty.

use std::collections::{BTreeSet, HashMap};

/// Which shared object a visible operation touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Obj {
    /// No shared object (yield, spin hints, thread start, join).
    None,
    /// A modeled atomic cell.
    Atomic(usize),
    /// A modeled channel (queue + endpoint liveness share one id).
    Chan(usize),
    /// A modeled mutex.
    Lock(usize),
}

/// How a visible operation interacts with its object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Observes the object without mutating it.
    Read,
    /// Mutates (or may mutate) the object.
    Write,
    /// Touches no shared state; independent of every other operation.
    Pure,
}

/// The declared footprint of one visible operation. Every schedule
/// point carries one; the explorer uses it for race detection (which
/// drives backtracking) and for sleep-set filtering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Object touched.
    pub obj: Obj,
    /// Read/write/pure classification.
    pub kind: AccessKind,
}

impl Access {
    /// A pure scheduling point (yield, thread start, join decision).
    pub const PURE: Access = Access {
        obj: Obj::None,
        kind: AccessKind::Pure,
    };

    /// A read of `obj`.
    pub fn read(obj: Obj) -> Self {
        Self {
            obj,
            kind: AccessKind::Read,
        }
    }

    /// A write (or possible write) of `obj`.
    pub fn write(obj: Obj) -> Self {
        Self {
            obj,
            kind: AccessKind::Write,
        }
    }

    /// Two operations are dependent iff they touch the same object and
    /// at least one writes it. Pure operations are independent of
    /// everything (including each other).
    fn dependent(a: Access, b: Access) -> bool {
        if a.kind == AccessKind::Pure || b.kind == AccessKind::Pure {
            return false;
        }
        if a.obj == Obj::None || a.obj != b.obj {
            return false;
        }
        a.kind == AccessKind::Write || b.kind == AccessKind::Write
    }
}

/// Per-thread vector clock; index = thread id, value = events executed
/// by that thread that happen-before this point.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct VClock(Vec<u32>);

impl VClock {
    fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    fn incr(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }
}

/// One executed event remembered on an object: who ran it, at which
/// decision depth, and with which clock.
#[derive(Clone, Debug)]
struct EventRef {
    tid: usize,
    depth: usize,
    clock: VClock,
}

/// Per-object access history: the last write and every read since it.
#[derive(Debug, Default)]
struct ObjState {
    last_write: Option<EventRef>,
    reads: Vec<EventRef>,
}

/// One decision point on the current DFS path.
#[derive(Debug)]
struct Node {
    /// Ready threads at this decision (deterministic across replays).
    enabled: Vec<usize>,
    /// Thread chosen for the current run through this node.
    chosen: usize,
    /// Choices whose subtrees are fully explored.
    done: BTreeSet<usize>,
    /// Choices that must be explored from this node (seeded with the
    /// first choice; grown by race detection — or with all enabled
    /// threads in brute-force mode).
    backtrack: BTreeSet<usize>,
    /// Sleep set inherited when this node was created.
    sleep0: BTreeSet<usize>,
}

/// What the explorer tells the scheduler to do at a decision.
pub(crate) enum Decision {
    /// Hand the token to this thread.
    Chosen(usize),
    /// Every enabled thread is asleep: the run is redundant; abort it.
    SleepBlocked,
}

/// Persistent exploration state across the runs of one model check.
pub(crate) struct Explorer {
    dpor: bool,
    stack: Vec<Node>,
    // Per-run state, reset by `begin_run`.
    depth: usize,
    clocks: Vec<VClock>,
    exit_clocks: HashMap<usize, VClock>,
    objs: HashMap<Obj, ObjState>,
    cur_sleep: BTreeSet<usize>,
    run_sleep_blocked: bool,
    // Whole-exploration counters, surfaced in the model report.
    pub(crate) explored: usize,
    pub(crate) sleep_blocked: usize,
    pub(crate) backtrack_points: usize,
    pub(crate) decisions: u64,
    pub(crate) max_depth: usize,
}

impl Explorer {
    pub(crate) fn new(dpor: bool) -> Self {
        Self {
            dpor,
            stack: Vec::new(),
            depth: 0,
            clocks: Vec::new(),
            exit_clocks: HashMap::new(),
            objs: HashMap::new(),
            cur_sleep: BTreeSet::new(),
            run_sleep_blocked: false,
            explored: 0,
            sleep_blocked: 0,
            backtrack_points: 0,
            decisions: 0,
            max_depth: 0,
        }
    }

    pub(crate) fn dpor(&self) -> bool {
        self.dpor
    }

    /// Reset per-run state before a fresh run replays the stack.
    pub(crate) fn begin_run(&mut self) {
        self.depth = 0;
        self.clocks.clear();
        self.exit_clocks.clear();
        self.objs.clear();
        self.cur_sleep.clear();
        self.run_sleep_blocked = false;
    }

    pub(crate) fn run_was_sleep_blocked(&self) -> bool {
        self.run_sleep_blocked
    }

    /// A modeled thread registered. The child's clock starts as a copy
    /// of the spawner's: the spawn point happens-before everything the
    /// child does (a true ordering, so pruning on it is exact).
    pub(crate) fn thread_registered(&mut self, tid: usize, parent: Option<usize>) {
        if self.clocks.len() <= tid {
            self.clocks.resize(tid + 1, VClock::default());
        }
        if let Some(p) = parent {
            let pc = self.clocks.get(p).cloned().unwrap_or_default();
            self.clocks[tid] = pc;
        }
    }

    /// A modeled thread finished; remember its final clock so joiners
    /// can absorb it.
    pub(crate) fn thread_exited(&mut self, tid: usize) {
        let c = self.clocks.get(tid).cloned().unwrap_or_default();
        self.exit_clocks.insert(tid, c);
    }

    /// `joiner` completed a join on `target`: absorb the target's exit
    /// clock. Join cannot be observably reordered with the target's
    /// exit, so no race detection is needed for the edge itself.
    pub(crate) fn join_absorb(&mut self, joiner: usize, target: usize) {
        if let Some(c) = self.exit_clocks.get(&target).cloned() {
            if self.clocks.len() <= joiner {
                self.clocks.resize(joiner + 1, VClock::default());
            }
            self.clocks[joiner].join(&c);
        }
    }

    /// Make (or replay) the decision at the current depth. `enabled`
    /// is the Ready-thread list; `pending[t]` is thread `t`'s declared
    /// next access (its thread-start is `Access::PURE`).
    pub(crate) fn decide(&mut self, enabled: &[usize], pending: &[Access]) -> Decision {
        let d = self.depth;
        if d >= self.stack.len() {
            // Fresh territory: pick the first enabled thread that is
            // not asleep; if none exists the run is redundant.
            let first_awake = enabled
                .iter()
                .copied()
                .find(|t| !self.cur_sleep.contains(t));
            let Some(chosen) = first_awake else {
                self.run_sleep_blocked = true;
                return Decision::SleepBlocked;
            };
            let backtrack: BTreeSet<usize> = if self.dpor {
                std::iter::once(chosen).collect()
            } else {
                // Brute-force mode: branch on every enabled thread,
                // reproducing exhaustive DFS in the same machinery.
                enabled.iter().copied().collect()
            };
            self.stack.push(Node {
                enabled: enabled.to_vec(),
                chosen,
                done: BTreeSet::new(),
                backtrack,
                sleep0: self.cur_sleep.clone(),
            });
        } else {
            let node = &self.stack[d];
            assert_eq!(
                node.enabled, enabled,
                "loom (shim): replay diverged at decision {d} (model body is \
                 non-deterministic beyond scheduling)"
            );
        }
        let chosen = self.stack[d].chosen;
        let access = pending.get(chosen).copied().unwrap_or(Access::PURE);

        if self.dpor {
            self.detect_races(chosen, access);
        }
        self.advance_clocks(chosen, access);

        if self.dpor {
            // Sleep set for the next depth: explored siblings stay
            // asleep while independent of the event just executed.
            let mut next_sleep = self.cur_sleep.clone();
            next_sleep.extend(self.stack[d].done.iter().copied());
            next_sleep.remove(&chosen);
            next_sleep.retain(|&q| {
                let qa = pending.get(q).copied().unwrap_or(Access::PURE);
                !Access::dependent(qa, access)
            });
            self.cur_sleep = next_sleep;
        }

        self.depth += 1;
        self.decisions += 1;
        self.max_depth = self.max_depth.max(self.depth);
        Decision::Chosen(chosen)
    }

    /// Flanagan–Godefroid race detection for the event `chosen` is
    /// about to execute: find earlier events on the same object that
    /// are dependent and not happens-before-ordered, and insert a
    /// backtrack point at each such event's pre-state.
    fn detect_races(&mut self, chosen: usize, access: Access) {
        if access.kind == AccessKind::Pure || access.obj == Obj::None {
            return;
        }
        let my_cv = self.clocks.get(chosen).cloned().unwrap_or_default();
        let mut race_depths: Vec<usize> = Vec::new();
        if let Some(obj) = self.objs.get(&access.obj) {
            let mut consider = |e: &EventRef| {
                // Ordered iff the earlier event is in our past:
                // clock-of-event[its thread] <= our clock[its thread].
                // Checked against OUR clock before any join with the
                // object's clocks, else every dependent pair would
                // look ordered.
                if e.tid != chosen && e.clock.get(e.tid) > my_cv.get(e.tid) {
                    race_depths.push(e.depth);
                }
            };
            if let Some(w) = &obj.last_write {
                consider(w);
            }
            if access.kind == AccessKind::Write {
                for r in &obj.reads {
                    consider(r);
                }
            }
        }
        for rd in race_depths {
            self.insert_backtrack(rd, chosen);
        }
    }

    /// Insert a backtrack point at decision `d` for thread `p` (the
    /// thread whose current event races with the one executed at `d`):
    /// `p` itself if it was enabled there, otherwise — conservatively,
    /// per Flanagan–Godefroid — every thread enabled there.
    fn insert_backtrack(&mut self, d: usize, p: usize) {
        let node = &mut self.stack[d];
        if node.enabled.contains(&p) {
            if node.backtrack.insert(p) {
                self.backtrack_points += 1;
            }
        } else {
            for &t in &node.enabled {
                if node.backtrack.insert(t) {
                    self.backtrack_points += 1;
                }
            }
        }
    }

    /// Update vector clocks and per-object history for the event.
    fn advance_clocks(&mut self, chosen: usize, access: Access) {
        if self.clocks.len() <= chosen {
            self.clocks.resize(chosen + 1, VClock::default());
        }
        if access.kind == AccessKind::Pure || access.obj == Obj::None {
            self.clocks[chosen].incr(chosen);
            return;
        }
        let d = self.depth;
        let mut ec = self.clocks[chosen].clone();
        let obj = self.objs.entry(access.obj).or_default();
        if let Some(w) = &obj.last_write {
            ec.join(&w.clock);
        }
        if access.kind == AccessKind::Write {
            for r in &obj.reads {
                ec.join(&r.clock);
            }
        }
        ec.incr(chosen);
        match access.kind {
            AccessKind::Read => obj.reads.push(EventRef {
                tid: chosen,
                depth: d,
                clock: ec.clone(),
            }),
            AccessKind::Write => {
                obj.last_write = Some(EventRef {
                    tid: chosen,
                    depth: d,
                    clock: ec.clone(),
                });
                obj.reads.clear();
            }
            AccessKind::Pure => {}
        }
        self.clocks[chosen] = ec;
    }

    /// Prepare the next run: pop fully-explored nodes, pivot the
    /// deepest node with an unexplored backtrack candidate. Returns
    /// `false` when the whole space is exhausted.
    pub(crate) fn advance(&mut self) -> bool {
        while let Some(node) = self.stack.last_mut() {
            node.done.insert(node.chosen);
            let cand = node
                .backtrack
                .iter()
                .copied()
                .find(|t| !node.done.contains(t) && !node.sleep0.contains(t));
            match cand {
                Some(t) => {
                    node.chosen = t;
                    return true;
                }
                None => {
                    self.stack.pop();
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WA: Access = Access {
        obj: Obj::Atomic(0),
        kind: AccessKind::Write,
    };
    const WB: Access = Access {
        obj: Obj::Atomic(1),
        kind: AccessKind::Write,
    };
    const RA: Access = Access {
        obj: Obj::Atomic(0),
        kind: AccessKind::Read,
    };

    #[test]
    fn dependence_is_same_object_with_a_write() {
        assert!(Access::dependent(WA, WA));
        assert!(Access::dependent(WA, RA));
        assert!(!Access::dependent(RA, RA));
        assert!(!Access::dependent(WA, WB));
        assert!(!Access::dependent(Access::PURE, WA));
    }

    #[test]
    fn independent_writers_need_one_schedule() {
        // Two threads, one event each, on different objects: DPOR must
        // not create any backtrack candidate, so advance() exhausts
        // the space after a single run.
        let mut ex = Explorer::new(true);
        ex.begin_run();
        ex.thread_registered(0, None);
        ex.thread_registered(1, Some(0));
        let pend = [WA, WB];
        assert!(matches!(ex.decide(&[0, 1], &pend), Decision::Chosen(0)));
        // Thread 0 exits after its event; only thread 1 remains.
        assert!(matches!(ex.decide(&[1], &pend), Decision::Chosen(1)));
        assert!(!ex.advance(), "independent events must not branch");
        assert_eq!(ex.backtrack_points, 0);
    }

    #[test]
    fn racing_writes_insert_a_backtrack_point() {
        let mut ex = Explorer::new(true);
        ex.begin_run();
        ex.thread_registered(0, None);
        ex.thread_registered(1, Some(0));
        let pend = [WA, WA];
        assert!(matches!(ex.decide(&[0, 1], &pend), Decision::Chosen(0)));
        // Thread 0 exits after its event; only thread 1 remains.
        assert!(matches!(ex.decide(&[1], &pend), Decision::Chosen(1)));
        assert_eq!(ex.backtrack_points, 1, "write/write race must backtrack");
        assert!(ex.advance(), "the other order must be scheduled");
        // Second run: the pivot node now chooses thread 1 first.
        ex.begin_run();
        ex.thread_registered(0, None);
        ex.thread_registered(1, Some(0));
        assert!(matches!(ex.decide(&[0, 1], &pend), Decision::Chosen(1)));
    }

    #[test]
    fn sleep_set_blocks_redundant_reexploration() {
        // After exploring thread 0's independent event, a pivot at the
        // root puts 0 to sleep; a run that can only schedule 0 is
        // sleep-blocked.
        let mut ex = Explorer::new(true);
        ex.begin_run();
        ex.thread_registered(0, None);
        ex.thread_registered(1, Some(0));
        let pend = [WA, WB];
        // Force a branch by hand to simulate an inserted backtrack.
        assert!(matches!(ex.decide(&[0, 1], &pend), Decision::Chosen(0)));
        ex.insert_backtrack(0, 1);
        assert!(matches!(ex.decide(&[1], &pend), Decision::Chosen(1)));
        assert!(ex.advance());
        ex.begin_run();
        ex.thread_registered(0, None);
        ex.thread_registered(1, Some(0));
        // Pivot: thread 1 runs first; thread 0 (done at the root) is
        // now asleep and WB is independent of WA, so it stays asleep.
        assert!(matches!(ex.decide(&[0, 1], &pend), Decision::Chosen(1)));
        assert!(matches!(ex.decide(&[0], &pend), Decision::SleepBlocked));
        assert!(ex.run_was_sleep_blocked());
    }

    #[test]
    fn brute_force_mode_branches_everywhere() {
        let mut ex = Explorer::new(false);
        ex.begin_run();
        ex.thread_registered(0, None);
        ex.thread_registered(1, Some(0));
        let pend = [WA, WB];
        assert!(matches!(ex.decide(&[0, 1], &pend), Decision::Chosen(0)));
        assert!(matches!(ex.decide(&[1], &pend), Decision::Chosen(1)));
        // Even independent events branch in brute-force mode.
        assert!(ex.advance());
    }

    #[test]
    fn spawn_edge_orders_parent_write_before_child() {
        // Parent writes A (event), then registers the child: the
        // child's write of A is ordered after, not racing.
        let mut ex = Explorer::new(true);
        ex.begin_run();
        ex.thread_registered(0, None);
        let pend0 = [WA];
        assert!(matches!(ex.decide(&[0], &pend0), Decision::Chosen(0)));
        ex.thread_registered(1, Some(0));
        // Parent exits; the child performs its write of the same cell.
        let pend = [Access::PURE, WA];
        assert!(matches!(ex.decide(&[1], &pend), Decision::Chosen(1)));
        assert_eq!(
            ex.backtrack_points, 0,
            "spawn edge must order the parent's earlier write"
        );
    }
}
