//! Modeled threads: `spawn`/`join` register with the token scheduler so
//! thread start, every visible op, and thread exit are all enumerated
//! scheduling decisions.

use crate::dpor::Access;
use crate::sched::{set_ctx, with_scheduler, BlockReason};
use std::sync::{Arc, Mutex};

/// Handle to a modeled thread (shim of `std::thread::JoinHandle`).
pub struct JoinHandle<T> {
    tid: usize,
    os: Option<std::thread::JoinHandle<()>>,
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
}

/// Spawn a modeled thread. Must be called from inside `loom::model`.
///
/// The child thread does not run user code until the scheduler hands it
/// the token, so spawning itself is not a visible op — the child simply
/// becomes one more option at subsequent scheduling decisions.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (sched, tid) = with_scheduler(|s, me| {
        // The spawner is recorded so the explorer can give the child
        // the spawn happens-before edge (child inherits `me`'s clock).
        let tid = s.register_thread(Some(me));
        (Arc::clone(s), tid)
    });
    let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
    let result2 = Arc::clone(&result);
    let sched2 = Arc::clone(&sched);
    let os = std::thread::Builder::new()
        .name(format!("loom-model-{tid}"))
        .spawn(move || {
            set_ctx(Arc::clone(&sched2), tid);
            if sched2.park_start(tid).is_err() {
                // Run aborted before this thread ever ran.
                sched2.finish_thread(tid);
                return;
            }
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            if let Err(payload) = &out {
                // Clone-free: stash the payload via record_panic only for
                // real panics; ModelAbort unwinds are bookkeeping.
                sched2.record_panic(clone_or_take_payload(payload));
            }
            *result2.lock().unwrap() = Some(out);
            sched2.finish_thread(tid);
        })
        .expect("spawn OS thread for loom model");
    JoinHandle {
        tid,
        os: Some(os),
        result,
    }
}

/// The panic payload can't be cloned in general; summarize it for the
/// scheduler's first-failure slot while the original stays in `result`.
fn clone_or_take_payload(payload: &Box<dyn std::any::Any + Send>) -> Box<dyn std::any::Any + Send> {
    if payload.downcast_ref::<crate::sched::ModelAbort>().is_some() {
        Box::new(crate::sched::ModelAbort)
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        Box::new(*s)
    } else if let Some(s) = payload.downcast_ref::<String>() {
        Box::new(s.clone())
    } else {
        Box::new("modeled thread panicked (non-string payload)".to_string())
    }
}

impl<T> JoinHandle<T> {
    /// Modeled join: a scheduling point, then deschedule until the child
    /// finishes. Returns the child's result like `std::thread`.
    pub fn join(mut self) -> std::thread::Result<T> {
        with_scheduler(|s, me| {
            // Pure: a join cannot be observably reordered with the
            // target's exit (it must follow it), so it neither races
            // nor wakes sleeping threads. The ordering it *does*
            // create is absorbed below as a happens-before edge.
            s.schedule_point(me, Access::PURE);
            while !s.is_done(self.tid) {
                s.block(me, BlockReason::Join(self.tid));
            }
            s.absorb_join(me, self.tid);
        });
        // The modeled thread is Done; the OS thread is past the point
        // where it stored `result`, so this join is effectively instant.
        if let Some(os) = self.os.take() {
            let _ = os.join();
        }
        self.result
            .lock()
            .unwrap()
            .take()
            .expect("joined modeled thread left no result")
    }
}

/// Modeled yield: pure scheduling point.
pub fn yield_now() {
    with_scheduler(|s, me| s.schedule_point(me, Access::PURE));
}
