//! The token scheduler: serializes modeled threads and enumerates
//! scheduling decisions depth-first.
//!
//! Invariant: at any instant exactly one modeled thread is *running*
//! (holds the token); all others are parked inside this module. Every
//! visible operation calls [`Scheduler::schedule_point`], which makes
//! one enumerated decision: which thread performs its next visible
//! operation. Replaying a recorded decision prefix therefore replays
//! the exact execution.

use std::any::Any;
use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex};

/// What a finished run yields: the decision trace (chosen, options) and,
/// if the run failed, the first panic payload.
pub(crate) type RunOutcome = (Vec<(usize, usize)>, Option<Box<dyn Any + Send>>);

/// Why a thread is descheduled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockReason {
    /// Waiting for a message on the channel with this id.
    Recv(usize),
    /// Waiting for the thread with this id to finish.
    Join(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    /// Runnable (running, or parked waiting for the token).
    Ready,
    /// Descheduled until the event in the reason occurs.
    Blocked(BlockReason),
    /// Finished.
    Done,
}

/// Marker panic payload used to unwind parked threads when a run aborts.
pub(crate) struct ModelAbort;

struct State {
    status: Vec<Status>,
    current: usize,
    /// Replay prefix of decision indices for this run.
    prefix: Vec<usize>,
    pos: usize,
    /// (chosen index, number of options) per decision this run.
    trace: Vec<(usize, usize)>,
    aborting: bool,
    panic_payload: Option<Box<dyn Any + Send>>,
    live: usize,
    next_chan: usize,
}

/// One run's scheduler. A fresh `Scheduler` is built per explored
/// schedule; [`crate::model::model`] drives the enumeration across runs.
pub struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// Install the (scheduler, tid) pair for the current OS thread.
pub(crate) fn set_ctx(sched: Arc<Scheduler>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((sched, tid)));
}

/// Remove the context (end of a model run on the driving thread).
pub(crate) fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Run `f` with the current thread's scheduler context. Panics if the
/// calling thread is not inside `loom::model`.
pub fn with_scheduler<R>(f: impl FnOnce(&Arc<Scheduler>, usize) -> R) -> R {
    CTX.with(|c| {
        let b = c.borrow();
        let (sched, tid) = b
            .as_ref()
            .expect("loom (shim) primitive used outside loom::model");
        f(sched, *tid)
    })
}

/// True if the current OS thread is a modeled thread.
pub fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

impl Scheduler {
    /// Maximum decisions per run — guards against visible-op livelock.
    const MAX_TRACE: usize = 1 << 20;

    pub(crate) fn new(prefix: Vec<usize>) -> Self {
        Self {
            state: Mutex::new(State {
                status: Vec::new(),
                current: 0,
                prefix,
                pos: 0,
                trace: Vec::new(),
                aborting: false,
                panic_payload: None,
                live: 0,
                next_chan: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Register a new modeled thread; returns its tid.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        let tid = st.status.len();
        st.status.push(Status::Ready);
        st.live += 1;
        tid
    }

    /// Allocate a channel id (used in block reasons and reports).
    pub(crate) fn new_chan_id(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        let id = st.next_chan;
        st.next_chan += 1;
        id
    }

    /// Decision: pick which Ready thread performs the next visible op.
    /// Caller must hold the token. Returns with the token re-acquired.
    pub fn schedule_point(self: &Arc<Self>, me: usize) {
        let mut st = self.state.lock().unwrap();
        if st.aborting {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        debug_assert_eq!(st.current, me, "schedule point without token");
        let chosen = Self::decide(&mut st);
        if chosen != me {
            st.current = chosen;
            self.cv.notify_all();
            while st.current != me {
                if st.aborting {
                    drop(st);
                    std::panic::panic_any(ModelAbort);
                }
                st = self.cv.wait(st).unwrap();
            }
            if st.aborting {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
        }
    }

    /// Wait for the token before running any user code (new threads).
    pub(crate) fn park_start(&self, me: usize) -> Result<(), ()> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.aborting {
                return Err(());
            }
            if st.current == me {
                return Ok(());
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Deschedule `me` with `reason`, hand the token to another Ready
    /// thread, and return once `me` is Ready again and holds the token.
    ///
    /// For `Join` reasons, returns immediately (without descheduling) if
    /// the joined thread is already Done — the check and the transition
    /// share one critical section, so the wakeup cannot be lost.
    pub fn block(self: &Arc<Self>, me: usize, reason: BlockReason) {
        let mut st = self.state.lock().unwrap();
        if st.aborting {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        debug_assert_eq!(st.current, me, "block without token");
        if let BlockReason::Join(tid) = reason {
            if st.status[tid] == Status::Done {
                return;
            }
        }
        st.status[me] = Status::Blocked(reason);
        match Self::try_decide(&mut st) {
            Some(chosen) => {
                st.current = chosen;
                self.cv.notify_all();
            }
            None => {
                // Every live thread is blocked: deadlock. Report and
                // abort the run instead of hanging.
                let report = Self::deadlock_report(&st);
                st.aborting = true;
                if st.panic_payload.is_none() {
                    st.panic_payload = Some(Box::new(report.clone()));
                }
                self.cv.notify_all();
                drop(st);
                panic!("{report}");
            }
        }
        while !(st.current == me && st.status[me] == Status::Ready) {
            if st.aborting {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Mark Ready every thread blocked for a reason matching `pred`.
    /// Callable from any thread holding no model locks.
    pub fn unblock_where(&self, pred: impl Fn(BlockReason) -> bool) {
        let mut st = self.state.lock().unwrap();
        for s in st.status.iter_mut() {
            if let Status::Blocked(r) = *s {
                if pred(r) {
                    *s = Status::Ready;
                }
            }
        }
        self.cv.notify_all();
    }

    /// True if thread `tid` has finished.
    pub fn is_done(&self, tid: usize) -> bool {
        self.state.lock().unwrap().status[tid] == Status::Done
    }

    /// Record a panic from a modeled thread (first wins) and switch the
    /// run into abort mode so parked threads unwind.
    pub(crate) fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut st = self.state.lock().unwrap();
        if payload.downcast_ref::<ModelAbort>().is_none() && st.panic_payload.is_none() {
            st.panic_payload = Some(payload);
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    /// Mark `me` finished, wake its joiners, and hand off the token.
    pub(crate) fn finish_thread(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        st.status[me] = Status::Done;
        st.live -= 1;
        for s in st.status.iter_mut() {
            if *s == Status::Blocked(BlockReason::Join(me)) {
                *s = Status::Ready;
            }
        }
        if st.live == 0 || st.aborting {
            self.cv.notify_all();
            return;
        }
        if st.current == me {
            match Self::try_decide(&mut st) {
                Some(chosen) => st.current = chosen,
                None => {
                    let report = Self::deadlock_report(&st);
                    st.aborting = true;
                    if st.panic_payload.is_none() {
                        st.panic_payload = Some(Box::new(report.clone()));
                    }
                }
            }
        }
        self.cv.notify_all();
    }

    /// Block until every modeled thread finished; returns the decision
    /// trace and, if the run failed, the first panic payload.
    pub(crate) fn wait_all_done(&self) -> RunOutcome {
        let mut st = self.state.lock().unwrap();
        while st.live > 0 {
            st = self.cv.wait(st).unwrap();
        }
        (st.trace.clone(), st.panic_payload.take())
    }

    fn decide(st: &mut State) -> usize {
        Self::try_decide(st).expect("decide: no runnable thread (caller must be Ready)")
    }

    fn try_decide(st: &mut State) -> Option<usize> {
        let options: Vec<usize> = st
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Ready)
            .map(|(i, _)| i)
            .collect();
        if options.is_empty() {
            return None;
        }
        assert!(
            st.trace.len() < Self::MAX_TRACE,
            "loom (shim): run exceeded {} decisions — visible-op livelock?",
            Self::MAX_TRACE
        );
        let c = if st.pos < st.prefix.len() {
            st.prefix[st.pos]
        } else {
            0
        };
        assert!(
            c < options.len(),
            "loom (shim): replay diverged (model body is non-deterministic \
             beyond scheduling: decision {} chose {c} of {} options)",
            st.pos,
            options.len()
        );
        st.trace.push((c, options.len()));
        st.pos += 1;
        Some(options[c])
    }

    fn deadlock_report(st: &State) -> String {
        let mut lines = vec!["loom (shim): DEADLOCK — all live threads blocked".to_string()];
        for (tid, s) in st.status.iter().enumerate() {
            let desc = match s {
                Status::Ready => "ready".to_string(),
                Status::Done => "done".to_string(),
                Status::Blocked(BlockReason::Recv(c)) => {
                    format!("blocked on recv (channel #{c}, queue empty)")
                }
                Status::Blocked(BlockReason::Join(t)) => format!("blocked joining thread {t}"),
            };
            lines.push(format!("  thread {tid}: {desc}"));
        }
        lines.push(format!("  decision trace so far: {:?}", st.trace));
        lines.join("\n")
    }
}

/// Compute the next DFS prefix after a run with `trace`; `None` when the
/// space is exhausted.
pub(crate) fn next_prefix(trace: &[(usize, usize)]) -> Option<Vec<usize>> {
    for i in (0..trace.len()).rev() {
        let (c, k) = trace[i];
        if c + 1 < k {
            let mut prefix: Vec<usize> = trace[..i].iter().map(|&(c, _)| c).collect();
            prefix.push(c + 1);
            return Some(prefix);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::next_prefix;

    #[test]
    fn next_prefix_enumerates_dfs() {
        // Two binary decisions: 00 -> 01 -> 10 -> 11 -> done.
        assert_eq!(next_prefix(&[(0, 2), (0, 2)]), Some(vec![0, 1]));
        assert_eq!(next_prefix(&[(0, 2), (1, 2)]), Some(vec![1]));
        assert_eq!(next_prefix(&[(1, 2), (0, 2)]), Some(vec![1, 1]));
        assert_eq!(next_prefix(&[(1, 2), (1, 2)]), None);
    }

    #[test]
    fn next_prefix_skips_forced_decisions() {
        assert_eq!(next_prefix(&[(0, 1), (0, 1)]), None);
        assert_eq!(next_prefix(&[(0, 1), (0, 3)]), Some(vec![0, 1]));
    }
}
