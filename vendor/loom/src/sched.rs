//! The token scheduler: serializes modeled threads and hands every
//! scheduling decision to the DPOR explorer.
//!
//! Invariant: at any instant exactly one modeled thread is *running*
//! (holds the token); all others are parked inside this module. Every
//! visible operation calls [`Scheduler::schedule_point`], declaring the
//! [`Access`] it is about to perform; the explorer picks which Ready
//! thread performs its next visible operation (replaying its decision
//! stack first, then extending it). Replaying a recorded decision
//! stack therefore replays the exact execution.

use crate::dpor::{Access, Decision, Explorer};
use std::any::Any;
use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex};

/// What a finished run yields: the decision trace (chosen tid, number
/// of enabled threads) and, if the run failed, the first panic payload.
pub(crate) type RunOutcome = (Vec<(usize, usize)>, Option<Box<dyn Any + Send>>);

/// Why a thread is descheduled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockReason {
    /// Waiting for a message on the channel with this id.
    Recv(usize),
    /// Waiting for the thread with this id to finish.
    Join(usize),
    /// Waiting for the mutex with this id to be released.
    Lock(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    /// Runnable (running, or parked waiting for the token).
    Ready,
    /// Descheduled until the event in the reason occurs.
    Blocked(BlockReason),
    /// Finished.
    Done,
}

/// Marker panic payload used to unwind parked threads when a run aborts
/// (first failure found, or the run is sleep-set-redundant).
pub(crate) struct ModelAbort;

struct State {
    status: Vec<Status>,
    current: usize,
    /// (chosen tid, number of enabled threads) per decision this run.
    trace: Vec<(usize, usize)>,
    /// Per-thread declared next access (thread start is `Access::PURE`
    /// until the first schedule point overwrites it).
    pending: Vec<Access>,
    /// Exploration state; `None` once the driver reclaimed it.
    explorer: Option<Explorer>,
    aborting: bool,
    panic_payload: Option<Box<dyn Any + Send>>,
    live: usize,
    next_obj: usize,
}

/// One run's scheduler. A fresh `Scheduler` is built per explored
/// schedule; [`crate::model::model`] drives the enumeration across runs
/// by moving the [`Explorer`] from run to run.
pub struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// Install the (scheduler, tid) pair for the current OS thread.
pub(crate) fn set_ctx(sched: Arc<Scheduler>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((sched, tid)));
}

/// Remove the context (end of a model run on the driving thread).
pub(crate) fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Run `f` with the current thread's scheduler context. Panics if the
/// calling thread is not inside `loom::model`.
pub fn with_scheduler<R>(f: impl FnOnce(&Arc<Scheduler>, usize) -> R) -> R {
    CTX.with(|c| {
        let b = c.borrow();
        let (sched, tid) = b
            .as_ref()
            .expect("loom (shim) primitive used outside loom::model");
        f(sched, *tid)
    })
}

/// True if the current OS thread is a modeled thread.
pub fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Allocate a deterministic per-run object id for a modeled primitive,
/// or a shared alias id outside a model run (aliasing overstates
/// dependence, which is sound for the reduction).
pub(crate) fn alloc_obj_id() -> usize {
    if in_model() {
        with_scheduler(|s, _| s.new_obj_id())
    } else {
        usize::MAX
    }
}

/// Outcome of asking the explorer for the next thread.
enum Choice {
    Thread(usize),
    /// Every enabled thread is in the sleep set: redundant run.
    SleepBlocked,
    /// No thread is enabled at all: deadlock.
    NoneEnabled,
}

impl Scheduler {
    /// Maximum decisions per run — guards against visible-op livelock.
    const MAX_TRACE: usize = 1 << 20;

    pub(crate) fn new(explorer: Explorer) -> Self {
        Self {
            state: Mutex::new(State {
                status: Vec::new(),
                current: 0,
                trace: Vec::new(),
                pending: Vec::new(),
                explorer: Some(explorer),
                aborting: false,
                panic_payload: None,
                live: 0,
                next_obj: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Register a new modeled thread; returns its tid. `parent` is the
    /// spawning thread (None for the main model thread): the explorer
    /// uses it for the spawn happens-before edge.
    pub(crate) fn register_thread(&self, parent: Option<usize>) -> usize {
        let mut st = self.state.lock().unwrap();
        let tid = st.status.len();
        st.status.push(Status::Ready);
        st.pending.push(Access::PURE);
        st.live += 1;
        if let Some(e) = st.explorer.as_mut() {
            e.thread_registered(tid, parent);
        }
        tid
    }

    /// Allocate an object id (channels, atomics, mutexes — used in
    /// access declarations and block-reason reports).
    pub(crate) fn new_obj_id(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        let id = st.next_obj;
        st.next_obj += 1;
        id
    }

    /// Decision: declare the access `me` is about to perform, then let
    /// the explorer pick which Ready thread runs next. Caller must hold
    /// the token. Returns with the token re-acquired.
    pub fn schedule_point(self: &Arc<Self>, me: usize, access: Access) {
        let mut st = self.state.lock().unwrap();
        if st.aborting {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        debug_assert_eq!(st.current, me, "schedule point without token");
        st.pending[me] = access;
        let chosen = match Self::try_decide(&mut st) {
            Choice::Thread(t) => t,
            Choice::SleepBlocked => {
                st.aborting = true;
                self.cv.notify_all();
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            Choice::NoneEnabled => unreachable!("caller of schedule_point is Ready"),
        };
        if chosen != me {
            st.current = chosen;
            self.cv.notify_all();
            while st.current != me {
                if st.aborting {
                    drop(st);
                    std::panic::panic_any(ModelAbort);
                }
                st = self.cv.wait(st).unwrap();
            }
            if st.aborting {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
        }
    }

    /// Wait for the token before running any user code (new threads).
    pub(crate) fn park_start(&self, me: usize) -> Result<(), ()> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.aborting {
                return Err(());
            }
            if st.current == me {
                return Ok(());
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Deschedule `me` with `reason`, hand the token to another Ready
    /// thread, and return once `me` is Ready again and holds the token.
    ///
    /// For `Join` reasons, returns immediately (without descheduling) if
    /// the joined thread is already Done — the check and the transition
    /// share one critical section, so the wakeup cannot be lost.
    pub fn block(self: &Arc<Self>, me: usize, reason: BlockReason) {
        let mut st = self.state.lock().unwrap();
        if st.aborting {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        debug_assert_eq!(st.current, me, "block without token");
        if let BlockReason::Join(tid) = reason {
            if st.status[tid] == Status::Done {
                return;
            }
        }
        st.status[me] = Status::Blocked(reason);
        match Self::try_decide(&mut st) {
            Choice::Thread(chosen) => {
                st.current = chosen;
                self.cv.notify_all();
            }
            Choice::SleepBlocked => {
                st.aborting = true;
                self.cv.notify_all();
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            Choice::NoneEnabled => {
                // Every live thread is blocked: deadlock. Report and
                // abort the run instead of hanging.
                let report = Self::deadlock_report(&st);
                st.aborting = true;
                if st.panic_payload.is_none() {
                    st.panic_payload = Some(Box::new(report.clone()));
                }
                self.cv.notify_all();
                drop(st);
                panic!("{report}");
            }
        }
        while !(st.current == me && st.status[me] == Status::Ready) {
            if st.aborting {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Mark Ready every thread blocked for a reason matching `pred`.
    /// Callable from any thread holding no model locks.
    pub fn unblock_where(&self, pred: impl Fn(BlockReason) -> bool) {
        let mut st = self.state.lock().unwrap();
        for s in st.status.iter_mut() {
            if let Status::Blocked(r) = *s {
                if pred(r) {
                    *s = Status::Ready;
                }
            }
        }
        self.cv.notify_all();
    }

    /// True if thread `tid` has finished.
    pub fn is_done(&self, tid: usize) -> bool {
        self.state.lock().unwrap().status[tid] == Status::Done
    }

    /// `me` completed a join on `target`: give the explorer the
    /// happens-before edge (joiner absorbs the target's exit clock).
    pub(crate) fn absorb_join(&self, me: usize, target: usize) {
        let mut st = self.state.lock().unwrap();
        if let Some(e) = st.explorer.as_mut() {
            e.join_absorb(me, target);
        }
    }

    /// Record a panic from a modeled thread (first wins) and switch the
    /// run into abort mode so parked threads unwind.
    pub(crate) fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut st = self.state.lock().unwrap();
        if payload.downcast_ref::<ModelAbort>().is_none() && st.panic_payload.is_none() {
            st.panic_payload = Some(payload);
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    /// Mark `me` finished, wake its joiners, and hand off the token.
    pub(crate) fn finish_thread(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        st.status[me] = Status::Done;
        st.live -= 1;
        if let Some(e) = st.explorer.as_mut() {
            e.thread_exited(me);
        }
        for s in st.status.iter_mut() {
            if *s == Status::Blocked(BlockReason::Join(me)) {
                *s = Status::Ready;
            }
        }
        if st.live == 0 || st.aborting {
            self.cv.notify_all();
            return;
        }
        if st.current == me {
            match Self::try_decide(&mut st) {
                Choice::Thread(chosen) => st.current = chosen,
                Choice::SleepBlocked => {
                    // Redundant run; no unwinding needed from a thread
                    // that already finished — just flip to abort so the
                    // remaining (sleeping) threads unwind.
                    st.aborting = true;
                }
                Choice::NoneEnabled => {
                    let report = Self::deadlock_report(&st);
                    st.aborting = true;
                    if st.panic_payload.is_none() {
                        st.panic_payload = Some(Box::new(report.clone()));
                    }
                }
            }
        }
        self.cv.notify_all();
    }

    /// Block until every modeled thread finished; returns the decision
    /// trace and, if the run failed, the first panic payload.
    pub(crate) fn wait_all_done(&self) -> RunOutcome {
        let mut st = self.state.lock().unwrap();
        while st.live > 0 {
            st = self.cv.wait(st).unwrap();
        }
        (st.trace.clone(), st.panic_payload.take())
    }

    /// Reclaim the explorer after `wait_all_done` (driver only).
    pub(crate) fn take_explorer(&self) -> Explorer {
        self.state
            .lock()
            .unwrap()
            .explorer
            .take()
            .expect("explorer already taken")
    }

    fn try_decide(st: &mut State) -> Choice {
        let enabled: Vec<usize> = st
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Ready)
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            return Choice::NoneEnabled;
        }
        assert!(
            st.trace.len() < Self::MAX_TRACE,
            "loom (shim): run exceeded {} decisions — visible-op livelock?",
            Self::MAX_TRACE
        );
        // Split-borrow: the explorer mutates itself while reading the
        // per-thread pending accesses.
        let State {
            explorer, pending, ..
        } = st;
        match explorer
            .as_mut()
            .expect("explorer present during a run")
            .decide(&enabled, pending)
        {
            Decision::Chosen(tid) => {
                st.trace.push((tid, enabled.len()));
                Choice::Thread(tid)
            }
            Decision::SleepBlocked => Choice::SleepBlocked,
        }
    }

    fn deadlock_report(st: &State) -> String {
        let mut lines = vec!["loom (shim): DEADLOCK — all live threads blocked".to_string()];
        for (tid, s) in st.status.iter().enumerate() {
            let desc = match s {
                Status::Ready => "ready".to_string(),
                Status::Done => "done".to_string(),
                Status::Blocked(BlockReason::Recv(c)) => {
                    format!("blocked on recv (channel #{c}, queue empty)")
                }
                Status::Blocked(BlockReason::Join(t)) => format!("blocked joining thread {t}"),
                Status::Blocked(BlockReason::Lock(m)) => {
                    format!("blocked on mutex #{m} (held elsewhere)")
                }
            };
            lines.push(format!("  thread {tid}: {desc}"));
        }
        lines.push(format!(
            "  decision trace so far (tid/enabled): {:?}",
            st.trace
        ));
        lines.join("\n")
    }
}
