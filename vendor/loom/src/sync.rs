//! Modeled synchronization primitives: atomics whose every access is a
//! declared scheduling point, an mpsc channel with scheduler-aware
//! blocking, and a mutex with scheduler-aware contention.
//!
//! Every visible operation declares an [`Access`](crate::dpor::Access)
//! — which object it touches and whether it reads or writes — so the
//! DPOR explorer can prune schedules that only reorder independent
//! operations. Where the exact footprint is unclear the declaration
//! overstates (e.g. every channel operation is a *write* on the
//! channel object), which can only add explored schedules.

pub use std::sync::Arc;

use crate::dpor::{Access, Obj};
use crate::sched::{alloc_obj_id, in_model, with_scheduler, BlockReason};

pub mod atomic {
    //! Modeled atomics. Orderings are accepted for API compatibility and
    //! explored as sequential consistency (see the crate docs).

    pub use std::sync::atomic::Ordering;

    use crate::dpor::{Access, Obj};
    use crate::sched::{alloc_obj_id, with_scheduler};

    macro_rules! modeled_atomic {
        ($name:ident, $std:ty, $int:ty) => {
            /// Modeled atomic: every access is a scheduling point that
            /// declares a read or write on this cell's object id.
            #[derive(Debug)]
            pub struct $name {
                inner: $std,
                id: usize,
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(<$int>::default())
                }
            }

            impl $name {
                /// Create (not a scheduling point). Inside a model run
                /// the cell gets a deterministic per-run object id.
                pub fn new(v: $int) -> Self {
                    Self {
                        inner: <$std>::new(v),
                        id: alloc_obj_id(),
                    }
                }

                /// Consume, returning the value (not a scheduling point).
                pub fn into_inner(self) -> $int {
                    self.inner.into_inner()
                }

                /// Exclusive access needs no scheduling point.
                pub fn get_mut(&mut self) -> &mut $int {
                    self.inner.get_mut()
                }

                /// Modeled load.
                pub fn load(&self, _order: Ordering) -> $int {
                    with_scheduler(|s, me| {
                        s.schedule_point(me, Access::read(Obj::Atomic(self.id)))
                    });
                    // ORDERING: the model explores SC only; orderings
                    // are accepted and upgraded to SeqCst by design.
                    self.inner.load(Ordering::SeqCst)
                }

                /// Modeled store.
                pub fn store(&self, v: $int, _order: Ordering) {
                    with_scheduler(|s, me| {
                        s.schedule_point(me, Access::write(Obj::Atomic(self.id)))
                    });
                    // ORDERING: see load — SC-only model.
                    self.inner.store(v, Ordering::SeqCst)
                }

                /// Modeled swap.
                pub fn swap(&self, v: $int, _order: Ordering) -> $int {
                    with_scheduler(|s, me| {
                        s.schedule_point(me, Access::write(Obj::Atomic(self.id)))
                    });
                    // ORDERING: see load — SC-only model.
                    self.inner.swap(v, Ordering::SeqCst)
                }

                /// Modeled compare-exchange. Declared as a write even on
                /// the failure path (conservative: failure still reads).
                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$int, $int> {
                    with_scheduler(|s, me| {
                        s.schedule_point(me, Access::write(Obj::Atomic(self.id)))
                    });
                    // ORDERING: see load — SC-only model.
                    self.inner
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                /// Modeled weak compare-exchange. The model never fails
                /// spuriously, so weak == strong here; spurious-failure
                /// paths must be correct by retry-loop construction.
                pub fn compare_exchange_weak(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Modeled fetch-add.
                pub fn fetch_add(&self, v: $int, _order: Ordering) -> $int {
                    with_scheduler(|s, me| {
                        s.schedule_point(me, Access::write(Obj::Atomic(self.id)))
                    });
                    // ORDERING: see load — SC-only model.
                    self.inner.fetch_add(v, Ordering::SeqCst)
                }

                /// Modeled fetch-sub.
                pub fn fetch_sub(&self, v: $int, _order: Ordering) -> $int {
                    with_scheduler(|s, me| {
                        s.schedule_point(me, Access::write(Obj::Atomic(self.id)))
                    });
                    // ORDERING: see load — SC-only model.
                    self.inner.fetch_sub(v, Ordering::SeqCst)
                }

                /// Modeled fetch-or.
                pub fn fetch_or(&self, v: $int, _order: Ordering) -> $int {
                    with_scheduler(|s, me| {
                        s.schedule_point(me, Access::write(Obj::Atomic(self.id)))
                    });
                    // ORDERING: see load — SC-only model.
                    self.inner.fetch_or(v, Ordering::SeqCst)
                }

                /// Modeled fetch-and.
                pub fn fetch_and(&self, v: $int, _order: Ordering) -> $int {
                    with_scheduler(|s, me| {
                        s.schedule_point(me, Access::write(Obj::Atomic(self.id)))
                    });
                    // ORDERING: see load — SC-only model.
                    self.inner.fetch_and(v, Ordering::SeqCst)
                }
            }
        };
    }

    modeled_atomic!(AtomicU8, std::sync::atomic::AtomicU8, u8);
    modeled_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    modeled_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    modeled_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    /// Modeled atomic bool: every access is a scheduling point that
    /// declares a read or write on this cell's object id.
    #[derive(Debug)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
        id: usize,
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    impl AtomicBool {
        /// Create (not a scheduling point). Inside a model run the
        /// cell gets a deterministic per-run object id.
        pub fn new(v: bool) -> Self {
            Self {
                inner: std::sync::atomic::AtomicBool::new(v),
                id: alloc_obj_id(),
            }
        }

        /// Consume, returning the value (not a scheduling point).
        pub fn into_inner(self) -> bool {
            self.inner.into_inner()
        }

        /// Exclusive access needs no scheduling point.
        pub fn get_mut(&mut self) -> &mut bool {
            self.inner.get_mut()
        }

        /// Modeled load.
        pub fn load(&self, _order: Ordering) -> bool {
            with_scheduler(|s, me| s.schedule_point(me, Access::read(Obj::Atomic(self.id))));
            // ORDERING: the model explores SC only; orderings are
            // accepted and upgraded to SeqCst by design.
            self.inner.load(Ordering::SeqCst)
        }

        /// Modeled store.
        pub fn store(&self, v: bool, _order: Ordering) {
            with_scheduler(|s, me| s.schedule_point(me, Access::write(Obj::Atomic(self.id))));
            // ORDERING: see load — SC-only model.
            self.inner.store(v, Ordering::SeqCst)
        }

        /// Modeled swap.
        pub fn swap(&self, v: bool, _order: Ordering) -> bool {
            with_scheduler(|s, me| s.schedule_point(me, Access::write(Obj::Atomic(self.id))));
            // ORDERING: see load — SC-only model.
            self.inner.swap(v, Ordering::SeqCst)
        }
    }

    /// Modeled fence: a pure scheduling point. Under the model's
    /// always-SC semantics a fence has no additional effect, so it is
    /// independent of every other operation.
    pub fn fence(_order: Ordering) {
        with_scheduler(|s, me| s.schedule_point(me, Access::PURE));
    }
}

/// Modeled mutex: lock acquisition and release are scheduling points
/// declared as writes on the lock's object id, so all orderings of
/// critical sections on the same mutex are explored while sections on
/// different mutexes stay independent.
///
/// Poisoning is not modeled: `lock` always returns `Ok`.
#[derive(Debug)]
pub struct Mutex<T> {
    id: usize,
    // ORDERING: `held` is only ever accessed by the single running
    // modeled thread (the token serializes execution); SeqCst is for
    // form, not need.
    held: std::sync::atomic::AtomicBool,
    inner: std::sync::Mutex<T>,
}

/// Guard for a modeled [`Mutex`]; releases (a visible op) on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create (not a scheduling point).
    pub fn new(value: T) -> Self {
        Self {
            id: alloc_obj_id(),
            held: std::sync::atomic::AtomicBool::new(false),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Modeled lock: each acquisition attempt is a scheduling point; a
    /// held mutex deschedules the thread until the holder releases.
    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        with_scheduler(|s, me| loop {
            s.schedule_point(me, Access::write(Obj::Lock(self.id)));
            // ORDERING: token-serialized; see the `held` field note.
            if !self.held.swap(true, atomic::Ordering::SeqCst) {
                return;
            }
            s.block(me, BlockReason::Lock(self.id));
        });
        // The std mutex below is uncontended by construction: `held`
        // admits exactly one modeled owner at a time. Recover from
        // poisoning (a modeled panic mid-section) since the model
        // reports the panic itself.
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Ok(MutexGuard {
            lock: self,
            guard: Some(guard),
        })
    }

    /// Consume, returning the value (not a scheduling point).
    pub fn into_inner(self) -> std::sync::LockResult<T> {
        Ok(self
            .inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner))
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.guard.take());
        // Release is a visible op — but not while unwinding (a panic
        // mid-section is already being reported; a schedule point here
        // would panic inside drop and abort the process).
        if in_model() && !std::thread::panicking() {
            with_scheduler(|s, me| s.schedule_point(me, Access::write(Obj::Lock(self.lock.id))));
        }
        // ORDERING: token-serialized; see the `held` field note.
        self.lock
            .held
            .store(false, std::sync::atomic::Ordering::SeqCst);
        if in_model() {
            let id = self.lock.id;
            with_scheduler(|s, _| s.unblock_where(|r| r == BlockReason::Lock(id)));
        }
    }
}

pub mod mpsc {
    //! Modeled unbounded channel with scheduler-aware blocking receive.
    //!
    //! Every operation — send, each receive attempt, try_recv, len, and
    //! endpoint drops — is a scheduling point on the channel's object
    //! id. Endpoint drops must be visible ops: dropping the last sender
    //! flips later receives to `Err`, so its ordering against receive
    //! attempts is observable and the explorer has to know about it.
    //! (`Sender::clone` is *not* visible: the cloning thread already
    //! holds a sender, so the sender count stays positive across the
    //! clone and no receive outcome can depend on its timing.)

    use crate::dpor::{Access, Obj};
    use crate::sched::{in_model, with_scheduler, BlockReason, Scheduler};
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    struct Chan<T> {
        state: Mutex<ChanState<T>>,
        id: usize,
        sched: Arc<Scheduler>,
    }

    struct ChanState<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    /// Sending half.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Create a modeled unbounded channel. Must be called inside
    /// `loom::model`.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let (sched, id) = with_scheduler(|s, _| (Arc::clone(s), s.new_obj_id()));
        let chan = Arc::new(Chan {
            state: Mutex::new(ChanState {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
            }),
            id,
            sched,
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// Declare a visible op on the channel from a drop path: skipped
    /// while unwinding (the run is already aborting; a panic inside
    /// drop would abort the process) and outside model runs (teardown
    /// after the body returned its state to the harness).
    fn drop_visible_op(id: usize) {
        if in_model() && !std::thread::panicking() {
            with_scheduler(|s, me| s.schedule_point(me, Access::write(Obj::Chan(id))));
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Self {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            drop_visible_op(self.chan.id);
            let remaining = {
                let mut st = self.chan.state.lock().unwrap();
                st.senders -= 1;
                st.senders
            };
            if remaining == 0 {
                // Wake receivers so they can observe the disconnect.
                let id = self.chan.id;
                self.chan
                    .sched
                    .unblock_where(|r| r == BlockReason::Recv(id));
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            drop_visible_op(self.chan.id);
            self.chan.state.lock().unwrap().receiver_alive = false;
        }
    }

    impl<T> Sender<T> {
        /// Modeled send: a scheduling point, then enqueue and wake any
        /// receiver blocked on this channel.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            with_scheduler(|s, me| s.schedule_point(me, Access::write(Obj::Chan(self.chan.id))));
            {
                let mut st = self.chan.state.lock().unwrap();
                if !st.receiver_alive {
                    return Err(SendError(value));
                }
                st.queue.push_back(value);
            }
            let id = self.chan.id;
            self.chan
                .sched
                .unblock_where(|r| r == BlockReason::Recv(id));
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Modeled blocking receive. Every pop attempt is its own
        /// scheduling point (a fresh decision after each wakeup), so
        /// the explorer sees each attempt as a distinct event on the
        /// channel. An empty queue deschedules the thread; a deadlock
        /// (every live thread blocked) panics with a per-thread report
        /// rather than hanging.
        pub fn recv(&self) -> Result<T, RecvError> {
            with_scheduler(|s, me| loop {
                s.schedule_point(me, Access::write(Obj::Chan(self.chan.id)));
                {
                    let mut st = self.chan.state.lock().unwrap();
                    if let Some(v) = st.queue.pop_front() {
                        return Ok(v);
                    }
                    if st.senders == 0 {
                        return Err(RecvError);
                    }
                }
                // Holding the token between the emptiness check and
                // block() means no send can interleave: the lost-
                // wakeup race is structurally impossible here.
                s.block(me, BlockReason::Recv(self.chan.id));
            })
        }

        /// Modeled non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            with_scheduler(|s, me| s.schedule_point(me, Access::write(Obj::Chan(self.chan.id))));
            let mut st = self.chan.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Queue length right now (scheduling point; read-only).
        pub fn len(&self) -> usize {
            with_scheduler(|s, me| s.schedule_point(me, Access::read(Obj::Chan(self.chan.id))));
            self.chan.state.lock().unwrap().queue.len()
        }

        /// True if the queue is empty right now (scheduling point).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}
