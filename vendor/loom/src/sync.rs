//! Modeled synchronization primitives: atomics whose every access is a
//! scheduling point, and an mpsc channel with scheduler-aware blocking.

pub use std::sync::Arc;

pub mod atomic {
    //! Modeled atomics. Orderings are accepted for API compatibility and
    //! explored as sequential consistency (see the crate docs).

    pub use std::sync::atomic::Ordering;

    use crate::sched::with_scheduler;

    macro_rules! modeled_atomic {
        ($name:ident, $std:ty, $int:ty) => {
            /// Modeled atomic: every access is a scheduling point.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Create (not a scheduling point).
                pub fn new(v: $int) -> Self {
                    Self {
                        inner: <$std>::new(v),
                    }
                }

                /// Consume, returning the value (not a scheduling point).
                pub fn into_inner(self) -> $int {
                    self.inner.into_inner()
                }

                /// Modeled load.
                pub fn load(&self, _order: Ordering) -> $int {
                    with_scheduler(|s, me| s.schedule_point(me));
                    self.inner.load(Ordering::SeqCst)
                }

                /// Modeled store.
                pub fn store(&self, v: $int, _order: Ordering) {
                    with_scheduler(|s, me| s.schedule_point(me));
                    self.inner.store(v, Ordering::SeqCst)
                }

                /// Modeled swap.
                pub fn swap(&self, v: $int, _order: Ordering) -> $int {
                    with_scheduler(|s, me| s.schedule_point(me));
                    self.inner.swap(v, Ordering::SeqCst)
                }

                /// Modeled compare-exchange.
                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$int, $int> {
                    with_scheduler(|s, me| s.schedule_point(me));
                    self.inner
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                /// Modeled weak compare-exchange. The model never fails
                /// spuriously, so weak == strong here; spurious-failure
                /// paths must be correct by retry-loop construction.
                pub fn compare_exchange_weak(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Modeled fetch-add.
                pub fn fetch_add(&self, v: $int, _order: Ordering) -> $int {
                    with_scheduler(|s, me| s.schedule_point(me));
                    self.inner.fetch_add(v, Ordering::SeqCst)
                }

                /// Modeled fetch-sub.
                pub fn fetch_sub(&self, v: $int, _order: Ordering) -> $int {
                    with_scheduler(|s, me| s.schedule_point(me));
                    self.inner.fetch_sub(v, Ordering::SeqCst)
                }

                /// Modeled fetch-or.
                pub fn fetch_or(&self, v: $int, _order: Ordering) -> $int {
                    with_scheduler(|s, me| s.schedule_point(me));
                    self.inner.fetch_or(v, Ordering::SeqCst)
                }

                /// Modeled fetch-and.
                pub fn fetch_and(&self, v: $int, _order: Ordering) -> $int {
                    with_scheduler(|s, me| s.schedule_point(me));
                    self.inner.fetch_and(v, Ordering::SeqCst)
                }
            }
        };
    }

    modeled_atomic!(AtomicU8, std::sync::atomic::AtomicU8, u8);
    modeled_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    modeled_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    modeled_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    /// Modeled atomic bool.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Create (not a scheduling point).
        pub fn new(v: bool) -> Self {
            Self {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        /// Consume, returning the value (not a scheduling point).
        pub fn into_inner(self) -> bool {
            self.inner.into_inner()
        }

        /// Modeled load.
        pub fn load(&self, _order: Ordering) -> bool {
            with_scheduler(|s, me| s.schedule_point(me));
            self.inner.load(Ordering::SeqCst)
        }

        /// Modeled store.
        pub fn store(&self, v: bool, _order: Ordering) {
            with_scheduler(|s, me| s.schedule_point(me));
            self.inner.store(v, Ordering::SeqCst)
        }

        /// Modeled swap.
        pub fn swap(&self, v: bool, _order: Ordering) -> bool {
            with_scheduler(|s, me| s.schedule_point(me));
            self.inner.swap(v, Ordering::SeqCst)
        }
    }

    /// Modeled fence: a scheduling point with no memory effect beyond
    /// the model's always-SC semantics.
    pub fn fence(_order: Ordering) {
        with_scheduler(|s, me| s.schedule_point(me));
    }
}

pub mod mpsc {
    //! Modeled unbounded channel with scheduler-aware blocking receive.

    use crate::sched::{with_scheduler, BlockReason, Scheduler};
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    struct Chan<T> {
        state: Mutex<ChanState<T>>,
        id: usize,
        sched: Arc<Scheduler>,
    }

    struct ChanState<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    /// Sending half.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Create a modeled unbounded channel. Must be called inside
    /// `loom::model`.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let (sched, id) = with_scheduler(|s, _| (Arc::clone(s), s.new_chan_id()));
        let chan = Arc::new(Chan {
            state: Mutex::new(ChanState {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
            }),
            id,
            sched,
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Self {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut st = self.chan.state.lock().unwrap();
                st.senders -= 1;
                st.senders
            };
            if remaining == 0 {
                // Wake receivers so they can observe the disconnect.
                let id = self.chan.id;
                self.chan
                    .sched
                    .unblock_where(|r| r == BlockReason::Recv(id));
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.state.lock().unwrap().receiver_alive = false;
        }
    }

    impl<T> Sender<T> {
        /// Modeled send: a scheduling point, then enqueue and wake any
        /// receiver blocked on this channel.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            with_scheduler(|s, me| s.schedule_point(me));
            {
                let mut st = self.chan.state.lock().unwrap();
                if !st.receiver_alive {
                    return Err(SendError(value));
                }
                st.queue.push_back(value);
            }
            let id = self.chan.id;
            self.chan
                .sched
                .unblock_where(|r| r == BlockReason::Recv(id));
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Modeled blocking receive. An empty queue deschedules the
        /// thread; a deadlock (every live thread blocked) panics with a
        /// per-thread report rather than hanging.
        pub fn recv(&self) -> Result<T, RecvError> {
            with_scheduler(|s, me| {
                s.schedule_point(me);
                loop {
                    {
                        let mut st = self.chan.state.lock().unwrap();
                        if let Some(v) = st.queue.pop_front() {
                            return Ok(v);
                        }
                        if st.senders == 0 {
                            return Err(RecvError);
                        }
                    }
                    // Holding the token between the emptiness check and
                    // block() means no send can interleave: the lost-
                    // wakeup race is structurally impossible here.
                    s.block(me, BlockReason::Recv(self.chan.id));
                }
            })
        }

        /// Modeled non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            with_scheduler(|s, me| s.schedule_point(me));
            let mut st = self.chan.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Queue length right now (scheduling point).
        pub fn len(&self) -> usize {
            with_scheduler(|s, me| s.schedule_point(me));
            self.chan.state.lock().unwrap().queue.len()
        }

        /// True if the queue is empty right now (scheduling point).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}
