//! The exploration driver: runs the model body under every reachable
//! schedule (depth-first over scheduling decisions) until the space is
//! exhausted, a failure is found, or the iteration cap is hit.

use crate::sched::{clear_ctx, next_prefix, set_ctx, Scheduler};
use std::sync::Arc;

/// Default cap on explored schedules; override with `LOOM_MAX_ITERS`.
const DEFAULT_MAX_ITERS: usize = 250_000;

/// Exploration configuration (subset of real loom's `model::Builder`).
/// Use for scenarios whose exhaustive schedule count is known to exceed
/// the default cap — prefer shrinking the scenario when possible.
#[derive(Clone, Debug)]
pub struct Builder {
    /// Cap on explored schedules before the driver gives up.
    pub max_iters: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

impl Builder {
    /// A builder with the default (env-overridable) iteration cap.
    pub fn new() -> Self {
        let max_iters = std::env::var("LOOM_MAX_ITERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_MAX_ITERS);
        Self { max_iters }
    }

    /// Explore `f` under this configuration (see [`model`]).
    pub fn check<F>(&self, f: F)
    where
        F: Fn(),
    {
        model_with_cap(self.max_iters, f)
    }
}

/// Exhaustively explore the interleavings of `f`'s visible operations.
///
/// `f` is executed once per schedule; it must be deterministic apart
/// from scheduling (same visible-op structure given the same decision
/// sequence), which the replay machinery asserts. On failure the
/// driver prints the schedule that exposed it and re-raises the panic;
/// a modeled deadlock is a failure with a per-thread report.
pub fn model<F>(f: F)
where
    F: Fn(),
{
    Builder::new().check(f)
}

fn model_with_cap<F>(max_iters: usize, f: F)
where
    F: Fn(),
{
    let mut prefix: Vec<usize> = Vec::new();
    let mut iters: usize = 0;
    loop {
        iters += 1;
        let sched = Arc::new(Scheduler::new(prefix.clone()));
        let main_tid = sched.register_thread();
        debug_assert_eq!(main_tid, 0, "main model thread must register first");
        set_ctx(Arc::clone(&sched), main_tid);
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        if let Err(payload) = out {
            sched.record_panic(payload);
        }
        sched.finish_thread(main_tid);
        let (trace, payload) = sched.wait_all_done();
        clear_ctx();

        if let Some(payload) = payload {
            eprintln!(
                "loom (shim): failure on schedule #{iters}; decisions (chosen/options): {trace:?}"
            );
            std::panic::resume_unwind(payload);
        }
        match next_prefix(&trace) {
            Some(p) => prefix = p,
            None => {
                eprintln!("loom (shim): explored {iters} schedules, all passed");
                return;
            }
        }
        assert!(
            iters < max_iters,
            "loom (shim): exceeded {max_iters} schedules (set LOOM_MAX_ITERS to raise); \
             shrink the modeled scenario instead of raising the cap if possible"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::model;
    use crate::sync::atomic::{AtomicUsize, Ordering};
    use crate::sync::mpsc;
    use crate::sync::Arc;
    use crate::thread;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    use std::sync::atomic::Ordering as StdOrdering;

    #[test]
    fn explores_both_orders_of_two_stores() {
        // Two racing stores: the final value must take each of the two
        // possibilities in some explored schedule.
        let saw = Arc::new(StdAtomicUsize::new(0));
        let saw2 = Arc::clone(&saw);
        model(move || {
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = Arc::clone(&a);
            let t = thread::spawn(move || a2.store(1, Ordering::SeqCst));
            a.store(2, Ordering::SeqCst);
            t.join().unwrap();
            let v = a.load(Ordering::SeqCst);
            saw2.fetch_or(1 << v, StdOrdering::Relaxed);
        });
        assert_eq!(saw.load(StdOrdering::Relaxed), (1 << 1) | (1 << 2));
    }

    #[test]
    fn racing_increments_never_lose_updates() {
        model(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let a = Arc::clone(&a);
                    thread::spawn(move || a.fetch_add(1, Ordering::SeqCst))
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
    }

    #[test]
    fn finds_lost_update_with_nonatomic_rmw() {
        // load-then-store (a broken increment) must lose an update in
        // SOME schedule: the model's job is to find it.
        let res = std::panic::catch_unwind(|| {
            model(|| {
                let a = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let a = Arc::clone(&a);
                        thread::spawn(move || {
                            let v = a.load(Ordering::SeqCst);
                            a.store(v + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(res.is_err(), "model must expose the lost update");
    }

    #[test]
    fn channel_delivers_across_schedules() {
        model(|| {
            let (tx, rx) = mpsc::channel();
            let t = thread::spawn(move || {
                tx.send(41usize).unwrap();
                tx.send(1usize).unwrap();
            });
            let a = rx.recv().unwrap();
            let b = rx.recv().unwrap();
            assert_eq!(a + b, 42);
            t.join().unwrap();
        });
    }

    #[test]
    fn channel_disconnect_reported() {
        model(|| {
            let (tx, rx) = mpsc::channel::<usize>();
            let t = thread::spawn(move || {
                tx.send(7).unwrap();
                // tx dropped here: receiver must see Err after draining.
            });
            assert_eq!(rx.recv().unwrap(), 7);
            assert!(rx.recv().is_err());
            t.join().unwrap();
        });
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        // Two receivers waiting on each other's (never-sent) messages.
        let res = std::panic::catch_unwind(|| {
            model(|| {
                let (tx_a, rx_a) = mpsc::channel::<usize>();
                let (tx_b, rx_b) = mpsc::channel::<usize>();
                let t = thread::spawn(move || {
                    let v = rx_a.recv().unwrap();
                    tx_b.send(v).unwrap();
                });
                // Main waits for B before ever feeding A: deadlock.
                let v = rx_b.recv().unwrap();
                tx_a.send(v).unwrap();
                t.join().unwrap();
            });
        });
        let err = res.expect_err("deadlock must abort the model");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("DEADLOCK"), "report missing: {msg}");
        assert!(msg.contains("blocked on recv"), "report missing: {msg}");
    }

    #[test]
    fn yield_now_is_schedulable() {
        model(|| {
            let t = thread::spawn(|| {
                thread::yield_now();
                3usize
            });
            thread::yield_now();
            assert_eq!(t.join().unwrap(), 3);
        });
    }
}
