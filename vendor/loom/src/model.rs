//! The exploration driver: runs the model body under every schedule
//! the DPOR explorer deems necessary (depth-first over scheduling
//! decisions, pruned by sleep sets) until the reduced space is
//! exhausted, a failure is found, or the iteration cap is hit.

use crate::dpor::Explorer;
use crate::sched::{clear_ctx, set_ctx, Scheduler};
use std::sync::Arc;

/// Default cap on explored schedules; override with `LOOM_MAX_ITERS`.
const DEFAULT_MAX_ITERS: usize = 250_000;

/// Exploration configuration (subset of real loom's `model::Builder`).
#[derive(Clone, Debug)]
pub struct Builder {
    /// Cap on runs (explored + sleep-blocked) before the driver gives
    /// up. Prefer shrinking the scenario over raising the cap.
    pub max_iters: usize,
    /// Use dynamic partial-order reduction with sleep sets (default).
    /// `false` falls back to brute-force full enumeration — same
    /// machinery, every decision branches on every enabled thread —
    /// which the DPOR soundness harness uses as its reference.
    pub dpor: bool,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

/// What an exploration did: schedule counts for reporting and for
/// asserting reduction bounds in tests and benches.
#[derive(Clone, Debug)]
pub struct Report {
    /// Complete runs (each a distinct explored schedule).
    pub schedules_explored: usize,
    /// Runs aborted as redundant because every enabled thread was in
    /// the sleep set. These are the visible cost of the reduction
    /// (each is a short prefix, not a full schedule).
    pub sleep_blocked: usize,
    /// Backtrack points inserted by race detection.
    pub backtrack_points: usize,
    /// Total scheduling decisions across all runs.
    pub decisions: u64,
    /// Deepest decision stack reached (visible ops in one run).
    pub max_depth: usize,
    /// Whether DPOR was on.
    pub dpor: bool,
}

impl Builder {
    /// A builder with the default (env-overridable) iteration cap and
    /// DPOR enabled.
    pub fn new() -> Self {
        let max_iters = std::env::var("LOOM_MAX_ITERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_MAX_ITERS);
        Self {
            max_iters,
            dpor: true,
        }
    }

    /// Explore `f` under this configuration (see [`model`]).
    pub fn check<F>(&self, f: F)
    where
        F: Fn(),
    {
        self.check_report(f);
    }

    /// Explore `f` and return schedule counters. Panics (re-raising the
    /// model body's panic) if any explored schedule fails.
    pub fn check_report<F>(&self, f: F) -> Report
    where
        F: Fn(),
    {
        silence_model_abort_hook();
        let mut explorer = Explorer::new(self.dpor);
        loop {
            explorer.begin_run();
            let sched = Arc::new(Scheduler::new(explorer));
            let main_tid = sched.register_thread(None);
            debug_assert_eq!(main_tid, 0, "main model thread must register first");
            set_ctx(Arc::clone(&sched), main_tid);
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
            if let Err(payload) = out {
                sched.record_panic(payload);
            }
            sched.finish_thread(main_tid);
            let (trace, payload) = sched.wait_all_done();
            clear_ctx();
            explorer = sched.take_explorer();
            if explorer.run_was_sleep_blocked() {
                explorer.sleep_blocked += 1;
            } else {
                explorer.explored += 1;
            }

            if let Some(payload) = payload {
                eprintln!(
                    "loom (shim): failure on schedule #{} ({} sleep-blocked); \
                     decisions (tid/enabled): {trace:?}",
                    explorer.explored, explorer.sleep_blocked
                );
                std::panic::resume_unwind(payload);
            }
            if !explorer.advance() {
                break;
            }
            assert!(
                explorer.explored + explorer.sleep_blocked < self.max_iters,
                "loom (shim): exceeded {} runs (set LOOM_MAX_ITERS to raise); \
                 shrink the modeled scenario instead of raising the cap if possible",
                self.max_iters
            );
        }
        let report = Report {
            schedules_explored: explorer.explored,
            sleep_blocked: explorer.sleep_blocked,
            backtrack_points: explorer.backtrack_points,
            decisions: explorer.decisions,
            max_depth: explorer.max_depth,
            dpor: explorer.dpor(),
        };
        eprintln!(
            "loom (shim): explored {} schedules ({} sleep-blocked, {} backtrack points, dpor={}), all passed",
            report.schedules_explored, report.sleep_blocked, report.backtrack_points, report.dpor
        );
        report
    }
}

/// Install (once per process) a panic hook that swallows the internal
/// [`crate::sched::ModelAbort`] unwinds — sleep-blocked prefixes and
/// deadlock aborts raise them by design, and the default hook would
/// spam "thread panicked" for each. Every other panic is forwarded to
/// whatever hook was installed before.
fn silence_model_abort_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info
                .payload()
                .downcast_ref::<crate::sched::ModelAbort>()
                .is_none()
            {
                prev(info);
            }
        }));
    });
}

/// Explore the interleavings of `f`'s visible operations, pruned by
/// dynamic partial-order reduction (every Mazurkiewicz trace is still
/// covered; see `crate::dpor`).
///
/// `f` is executed once per schedule; it must be deterministic apart
/// from scheduling (same visible-op structure given the same decision
/// sequence), which the replay machinery asserts. On failure the
/// driver prints the schedule that exposed it and re-raises the panic;
/// a modeled deadlock is a failure with a per-thread report.
pub fn model<F>(f: F)
where
    F: Fn(),
{
    Builder::new().check(f)
}

#[cfg(test)]
mod tests {
    use super::{model, Builder};
    use crate::sync::atomic::{AtomicUsize, Ordering};
    use crate::sync::Arc;
    use crate::sync::{mpsc, Mutex};
    use crate::thread;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    use std::sync::atomic::Ordering as StdOrdering;

    #[test]
    fn explores_both_orders_of_two_stores() {
        // Two racing stores: the final value must take each of the two
        // possibilities in some explored schedule.
        let saw = Arc::new(StdAtomicUsize::new(0));
        let saw2 = Arc::clone(&saw);
        model(move || {
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = Arc::clone(&a);
            let t = thread::spawn(move || a2.store(1, Ordering::SeqCst));
            a.store(2, Ordering::SeqCst);
            t.join().unwrap();
            let v = a.load(Ordering::SeqCst);
            saw2.fetch_or(1 << v, StdOrdering::Relaxed);
        });
        assert_eq!(saw.load(StdOrdering::Relaxed), (1 << 1) | (1 << 2));
    }

    #[test]
    fn racing_increments_never_lose_updates() {
        model(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let a = Arc::clone(&a);
                    thread::spawn(move || a.fetch_add(1, Ordering::SeqCst))
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
    }

    #[test]
    fn finds_lost_update_with_nonatomic_rmw() {
        // load-then-store (a broken increment) must lose an update in
        // SOME schedule: the model's job is to find it — and DPOR must
        // not prune the schedule that exposes it.
        let res = std::panic::catch_unwind(|| {
            model(|| {
                let a = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let a = Arc::clone(&a);
                        thread::spawn(move || {
                            let v = a.load(Ordering::SeqCst);
                            a.store(v + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(res.is_err(), "model must expose the lost update");
    }

    #[test]
    fn channel_delivers_across_schedules() {
        model(|| {
            let (tx, rx) = mpsc::channel();
            let t = thread::spawn(move || {
                tx.send(41usize).unwrap();
                tx.send(1usize).unwrap();
            });
            let a = rx.recv().unwrap();
            let b = rx.recv().unwrap();
            assert_eq!(a + b, 42);
            t.join().unwrap();
        });
    }

    #[test]
    fn channel_disconnect_reported() {
        model(|| {
            let (tx, rx) = mpsc::channel::<usize>();
            let t = thread::spawn(move || {
                tx.send(7).unwrap();
                // tx dropped here: receiver must see Err after draining.
            });
            assert_eq!(rx.recv().unwrap(), 7);
            assert!(rx.recv().is_err());
            t.join().unwrap();
        });
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        // Two receivers waiting on each other's (never-sent) messages.
        let res = std::panic::catch_unwind(|| {
            model(|| {
                let (tx_a, rx_a) = mpsc::channel::<usize>();
                let (tx_b, rx_b) = mpsc::channel::<usize>();
                let t = thread::spawn(move || {
                    let v = rx_a.recv().unwrap();
                    tx_b.send(v).unwrap();
                });
                // Main waits for B before ever feeding A: deadlock.
                let v = rx_b.recv().unwrap();
                tx_a.send(v).unwrap();
                t.join().unwrap();
            });
        });
        let err = res.expect_err("deadlock must abort the model");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("DEADLOCK"), "report missing: {msg}");
        assert!(msg.contains("blocked on recv"), "report missing: {msg}");
    }

    #[test]
    fn yield_now_is_schedulable() {
        model(|| {
            let t = thread::spawn(|| {
                thread::yield_now();
                3usize
            });
            thread::yield_now();
            assert_eq!(t.join().unwrap(), 3);
        });
    }

    #[test]
    fn dpor_explores_independent_writers_once() {
        // Two threads writing two different atomics: every
        // interleaving is equivalent, so DPOR explores exactly one
        // schedule while brute force explores several.
        let b = Builder::new();
        let report = b.check_report(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let b = Arc::new(AtomicUsize::new(0));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || a2.store(1, Ordering::SeqCst));
            b.store(2, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst) + b2.load(Ordering::SeqCst), 3);
        });
        assert_eq!(
            report.schedules_explored, 1,
            "independent writes must need one schedule, got {report:?}"
        );

        let full = Builder {
            dpor: false,
            ..Builder::new()
        };
        let full_report = full.check_report(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let b = Arc::new(AtomicUsize::new(0));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || a2.store(1, Ordering::SeqCst));
            b.store(2, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst) + b2.load(Ordering::SeqCst), 3);
        });
        assert!(
            full_report.schedules_explored > report.schedules_explored,
            "brute force must branch more: {full_report:?} vs {report:?}"
        );
    }

    #[test]
    fn dpor_still_branches_racing_writers() {
        let report = Builder::new().check_report(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = Arc::clone(&a);
            let t = thread::spawn(move || a2.store(1, Ordering::SeqCst));
            a.store(2, Ordering::SeqCst);
            t.join().unwrap();
        });
        assert!(
            report.schedules_explored >= 2,
            "racing writes need both orders: {report:?}"
        );
        assert!(
            report.backtrack_points >= 1,
            "race must backtrack: {report:?}"
        );
    }

    #[test]
    fn mutex_serializes_critical_sections() {
        model(|| {
            let m = Arc::new(Mutex::new(0usize));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    thread::spawn(move || {
                        let mut g = m.lock().unwrap();
                        // Non-atomic read-modify-write: safe only
                        // because the mutex serializes sections.
                        let v = *g;
                        *g = v + 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*m.lock().unwrap(), 2);
        });
    }

    #[test]
    fn mutex_contention_is_reported_as_deadlock_when_never_released() {
        // A thread that locks and then blocks forever on a channel
        // while holding the guard: the other locker deadlocks; the
        // model must report, not hang.
        let res = std::panic::catch_unwind(|| {
            model(|| {
                let m = Arc::new(Mutex::new(0usize));
                let (_tx, rx) = mpsc::channel::<usize>();
                let m2 = Arc::clone(&m);
                let t = thread::spawn(move || {
                    let _g = m2.lock().unwrap();
                    let _ = rx.recv();
                });
                let _ = m.lock().unwrap();
                t.join().unwrap();
            });
        });
        let err = res.expect_err("deadlock must abort the model");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("DEADLOCK"), "report missing: {msg}");
    }
}
