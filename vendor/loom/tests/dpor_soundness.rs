//! Differential soundness harness for the DPOR + sleep-set reduction.
//!
//! The reduction claims that pruning preserves everything observable:
//! the set of distinct final states a program can reach, and every
//! assertion failure full enumeration would catch. This harness checks
//! both claims against the brute-force mode (`Builder { dpor: false }`),
//! which runs the *same* scheduler machinery with every decision
//! branching on every enabled thread:
//!
//! 1. **Outcome sets** — randomized small programs (2–3 threads, mixed
//!    atomic/channel/mutex ops) are explored under both modes; the set
//!    of distinct outcome fingerprints (per-op observations + final
//!    shared state) must be identical.
//! 2. **Seeded-bug mutants** — programs with planted concurrency bugs
//!    (non-atomic read-modify-write, lock elision, racy channel
//!    draining) must fail under DPOR exactly when they fail under full
//!    enumeration.

use loom::model::Builder;
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{mpsc, Arc as LoomArc, Mutex as LoomMutex};
use loom::thread;
use proptest::collection;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// One randomized visible operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Op {
    /// Load atomic `idx`, recording the value.
    Load(u8),
    /// Store `val` into atomic `idx`.
    Store(u8, u8),
    /// fetch_add `val` on atomic `idx`, recording the prior value.
    FetchAdd(u8, u8),
    /// Send `val` on the shared channel.
    Send(u8),
    /// try_recv on the shared channel, recording Ok/Empty/Disconnected.
    TryRecv,
    /// Lock the shared mutex and add `val`, recording the prior value.
    LockAdd(u8),
    /// Pure scheduling point.
    Yield,
}

type Program = Vec<Vec<Op>>;

const ATOMICS: usize = 2;

/// Run `prog` once under the current schedule and fingerprint what it
/// observed. Must be deterministic given the schedule: every source of
/// nondeterminism goes through loom primitives.
fn run_once(prog: &Program) -> String {
    let atomics = LoomArc::new(
        (0..ATOMICS)
            .map(|_| AtomicUsize::new(0))
            .collect::<Vec<_>>(),
    );
    let mutex = LoomArc::new(LoomMutex::new(0usize));
    let (tx, rx) = mpsc::channel::<usize>();
    let rx = LoomArc::new(rx);

    let exec = |ops: Vec<Op>,
                atomics: LoomArc<Vec<AtomicUsize>>,
                mutex: LoomArc<LoomMutex<usize>>,
                tx: Option<mpsc::Sender<usize>>,
                rx: LoomArc<mpsc::Receiver<usize>>| {
        let mut obs = Vec::new();
        for op in ops {
            match op {
                Op::Load(i) => {
                    let v = atomics[i as usize % ATOMICS].load(Ordering::SeqCst);
                    obs.push(format!("L{v}"));
                }
                Op::Store(i, v) => {
                    atomics[i as usize % ATOMICS].store(v as usize, Ordering::SeqCst);
                }
                Op::FetchAdd(i, v) => {
                    let p = atomics[i as usize % ATOMICS].fetch_add(v as usize, Ordering::SeqCst);
                    obs.push(format!("F{p}"));
                }
                Op::Send(v) => {
                    let _ = tx
                        .as_ref()
                        .expect("channel program has a sender")
                        .send(v as usize);
                }
                Op::TryRecv => {
                    let r = match rx.try_recv() {
                        Ok(v) => format!("R{v}"),
                        Err(mpsc::TryRecvError::Empty) => "Re".to_string(),
                        Err(mpsc::TryRecvError::Disconnected) => "Rd".to_string(),
                    };
                    obs.push(r);
                }
                Op::LockAdd(v) => {
                    let mut g = mutex.lock().unwrap();
                    let p = *g;
                    *g = p + v as usize;
                    obs.push(format!("M{p}"));
                }
                Op::Yield => thread::yield_now(),
            }
        }
        obs.join(",")
    };

    // Clone one sender per worker, then drop the original *before*
    // spawning: workers own the only senders, so disconnect becomes
    // observable once they finish — and main's drop is not one more
    // concurrent visible op multiplying the brute-force reference.
    // Programs that never touch the channel get no senders at all;
    // otherwise each worker's end-of-life Sender drop is a concurrent
    // visible event that multiplies the full enumeration ~100x while
    // observing nothing.
    let uses_chan = prog
        .iter()
        .flatten()
        .any(|op| matches!(op, Op::Send(_) | Op::TryRecv));
    let senders: Vec<Option<mpsc::Sender<usize>>> =
        prog.iter().map(|_| uses_chan.then(|| tx.clone())).collect();
    drop(tx);
    let handles: Vec<_> = prog
        .iter()
        .cloned()
        .zip(senders)
        .map(|(ops, t)| {
            let (a, m, r) = (
                LoomArc::clone(&atomics),
                LoomArc::clone(&mutex),
                LoomArc::clone(&rx),
            );
            thread::spawn(move || exec(ops, a, m, t, r))
        })
        .collect();
    let mut parts: Vec<String> = handles
        .into_iter()
        .map(|h| h.join().expect("worker must not panic"))
        .collect();
    for a in atomics.iter() {
        parts.push(format!("a{}", a.load(Ordering::SeqCst)));
    }
    parts.push(format!("m{}", *mutex.lock().unwrap()));
    let mut drained = Vec::new();
    while let Ok(v) = rx.try_recv() {
        drained.push(v.to_string());
    }
    parts.push(format!("q[{}]", drained.join(",")));
    parts.join(";")
}

/// Explore `prog` under one mode and collect the set of distinct
/// outcome fingerprints.
fn outcome_set(prog: &Program, dpor: bool) -> (BTreeSet<String>, usize) {
    let outcomes = Arc::new(Mutex::new(BTreeSet::new()));
    let sink = Arc::clone(&outcomes);
    let prog = prog.clone();
    let report = Builder {
        max_iters: 2_000_000,
        dpor,
    }
    .check_report(move || {
        let fp = run_once(&prog);
        sink.lock().unwrap().insert(fp);
    });
    let set = outcomes.lock().unwrap().clone();
    (set, report.schedules_explored)
}

/// True if the model body panics in some explored schedule.
fn catches(prog: &Program, assert_final: (usize, usize), dpor: bool) -> bool {
    let prog = prog.clone();
    let res = std::panic::catch_unwind(move || {
        Builder {
            max_iters: 2_000_000,
            dpor,
        }
        .check(move || {
            // Fingerprint segments: per-thread obs, then a<v> per
            // atomic, m<v>, q[...]; the seeded assertion checks one
            // atomic's final value.
            let fp = run_once(&prog);
            let (idx, want) = assert_final;
            let finals: Vec<usize> = fp
                .split(';')
                .filter(|p| p.starts_with('a'))
                .map(|p| p[1..].parse().unwrap_or(0))
                .collect();
            assert_eq!(finals[idx], want, "seeded assertion");
        });
    });
    res.is_err()
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..7, 0u8..2, 1u8..4).prop_map(|(k, idx, val)| match k {
        0 => Op::Load(idx),
        1 => Op::Store(idx, val),
        2 => Op::FetchAdd(idx, val),
        3 => Op::Send(val),
        4 => Op::TryRecv,
        5 => Op::LockAdd(val),
        _ => Op::Yield,
    })
}

fn program_strategy() -> impl Strategy<Value = Program> {
    collection::vec(collection::vec(op_strategy(), 1..=2), 2..=3).prop_map(|mut prog| {
        // Keep the brute-force reference affordable: every visible op
        // multiplies the full enumeration (sender drops and mutex
        // lock/unlock are visible ops too, so a 2-op worker can carry
        // five events, and each explored schedule spawns real OS
        // threads). Budget: three workers get one op each; two workers
        // get at most 2 + 1. Unbudgeted, a single case can need ~300k
        // reference runs (minutes); budgeted, the worst case is a few
        // hundred.
        if prog.len() == 3 {
            for ops in prog.iter_mut() {
                ops.truncate(1);
            }
        } else {
            prog[1].truncate(1);
        }
        prog
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn dpor_outcome_sets_match_full_enumeration(prog in program_strategy()) {
        let (full, full_n) = outcome_set(&prog, false);
        let (reduced, reduced_n) = outcome_set(&prog, true);
        prop_assert_eq!(
            &full, &reduced,
            "outcome sets diverged for {:?} (full explored {}, dpor {})",
            prog, full_n, reduced_n
        );
        prop_assert!(
            reduced_n <= full_n,
            "reduction explored more than full enumeration: {} > {}",
            reduced_n, full_n
        );
    }

}

#[test]
fn dpor_never_explores_more_than_full() {
    // All-dependent worst case: every op hits the same atomic; the
    // reduction must gracefully degrade to at most full size.
    for threads in [2usize, 3] {
        let ops_each = if threads == 3 { 1 } else { 2 };
        let prog: Program = (0..threads)
            .map(|_| vec![Op::FetchAdd(0, 1); ops_each])
            .collect();
        let (full, full_n) = outcome_set(&prog, false);
        let (reduced, reduced_n) = outcome_set(&prog, true);
        assert_eq!(full, reduced, "{threads} threads");
        assert!(
            reduced_n <= full_n,
            "{threads} threads: {reduced_n} > {full_n}"
        );
    }
}

/// Mutants with planted bugs: DPOR must catch exactly what full
/// enumeration catches.
#[test]
fn seeded_bug_mutants_caught_equally() {
    // (program, final-value assertion (atomic idx, expected), name)
    let broken_rmw: Program = vec![
        vec![Op::Load(0), Op::Store(0, 1)],
        vec![Op::Load(0), Op::Store(0, 1)],
    ];
    let correct_rmw: Program = vec![vec![Op::FetchAdd(0, 1)], vec![Op::FetchAdd(0, 1)]];
    let lock_elision: Program = vec![
        // One thread updates under the lock, the other around it: the
        // mutex totals diverge from the asserted sum in some schedule.
        vec![Op::LockAdd(1), Op::LockAdd(1)],
        vec![Op::LockAdd(1)],
    ];

    // broken_rmw: load;store "increments" can lose an update — final
    // can be 1, so asserting 2 must fail under BOTH modes.
    assert!(
        catches(&broken_rmw, (0, 2), false),
        "full enumeration must catch the lost update"
    );
    assert!(
        catches(&broken_rmw, (0, 2), true),
        "DPOR must catch the lost update full enumeration catches"
    );

    // correct_rmw: fetch_add never loses updates — asserting 2 holds in
    // EVERY schedule under both modes.
    assert!(
        !catches(&correct_rmw, (0, 2), false),
        "full enumeration must accept the correct increment"
    );
    assert!(
        !catches(&correct_rmw, (0, 2), true),
        "DPOR must not invent failures on the correct increment"
    );

    // lock_elision control: all updates locked, total is deterministic
    // (the mutex fingerprint isn't asserted here — this guards that
    // mutex scheduling itself doesn't produce spurious atomic failures).
    assert!(!catches(&lock_elision, (0, 0), false));
    assert!(!catches(&lock_elision, (0, 0), true));
}

/// The reduction must actually reduce on an independent workload, not
/// just stay equal: two threads on disjoint atomics.
#[test]
fn reduction_is_real_on_independent_workload() {
    let prog: Program = vec![
        vec![Op::Store(0, 1), Op::Load(0)],
        vec![Op::Store(1, 2), Op::Load(1)],
    ];
    let (full, full_n) = outcome_set(&prog, false);
    let (reduced, reduced_n) = outcome_set(&prog, true);
    assert_eq!(full, reduced, "sets must match");
    assert!(
        reduced_n < full_n,
        "independent ops must be pruned: dpor {reduced_n} vs full {full_n}"
    );
}
