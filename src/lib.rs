//! # METAPREP-RS
//!
//! A Rust reproduction of **"Parallel and Memory-efficient Preprocessing for
//! Metagenome Assembly"** (Rengasamy, Medvedev, Madduri; IEEE IPDPSW 2017).
//!
//! METAPREP partitions a metagenomic read set into connected components of
//! the *read graph* — reads are vertices and an edge connects two reads that
//! share a canonical k-mer — so that each component can be assembled
//! independently, bounding assembler memory.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`kmer`] — canonical k-mer encoding and enumeration,
//! * [`io`] — FASTQ parsing, writing and logical chunking,
//! * [`synth`] — synthetic metagenome community / read simulation,
//! * [`index`] — `merHist` / `FASTQPart` index tables and range planning,
//! * [`sort`] — serial and parallel LSB radix sorts,
//! * [`cc`] — union-find and label-propagation connected components,
//! * [`dist`] — the simulated distributed-memory cluster,
//! * [`core`] — the METAPREP pipeline itself,
//! * [`kmc`] — the KMC2-style k-mer counting baseline,
//! * [`assembly`] — the compact de Bruijn graph unitig assembler,
//! * [`norm`] — digital normalization (count-min sketch based),
//! * [`obs`] — run telemetry: spans, counters, trace export, run reports.
//!
//! ## Quickstart
//!
//! ```no_run
//! use metaprep::core::{Pipeline, PipelineConfig};
//! use metaprep::synth::{CommunityProfile, simulate_community};
//!
//! // Generate a small synthetic community and partition its reads.
//! let data = simulate_community(&CommunityProfile::quickstart(), 42);
//! let cfg = PipelineConfig::builder().k(27).tasks(2).threads(2).build();
//! let result = Pipeline::new(cfg).run_reads(&data.reads).unwrap();
//! println!("largest component holds {:.1}% of reads",
//!          100.0 * result.components.largest_fraction());
//! ```

pub use metaprep_assembly as assembly;
pub use metaprep_cc as cc;
pub use metaprep_core as core;
pub use metaprep_dist as dist;
pub use metaprep_index as index;
pub use metaprep_io as io;
pub use metaprep_kmc as kmc;
pub use metaprep_kmer as kmer;
pub use metaprep_norm as norm;
pub use metaprep_obs as obs;
pub use metaprep_sort as sort;
pub use metaprep_synth as synth;
