//! End-to-end integration tests through the public facade: synthetic data
//! -> FASTQ files on disk -> parse -> pipeline -> partition -> FASTQ out.

use metaprep::core::{partition_reads, write_partitions, Pipeline, PipelineConfig};
use metaprep::io::{parse_fastq_path, write_fastq_path, ReadStore};
use metaprep::synth::{simulate_community, CommunityProfile};

fn small_community() -> metaprep::synth::SimulatedData {
    let mut p = CommunityProfile::quickstart();
    p.read_pairs = 600;
    simulate_community(&p, 123)
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("metaprep_it_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn fastq_file_roundtrip_preserves_pipeline_result() {
    let data = small_community();
    let dir = tmpdir("roundtrip");
    let path = dir.join("reads.fastq");
    write_fastq_path(&path, &data.reads).unwrap();
    let back = parse_fastq_path(&path, true).unwrap();
    assert_eq!(back.len(), data.reads.len());
    assert_eq!(back.num_fragments(), data.reads.num_fragments());

    let cfg = PipelineConfig::builder().k(21).m(6).tasks(2).build();
    let a = Pipeline::new(cfg.clone()).run_reads(&data.reads).unwrap();
    let b = Pipeline::new(cfg).run_reads(&back).unwrap();
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.components.components, b.components.components);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn partition_outputs_reparse_and_cover_input() {
    let data = small_community();
    let cfg = PipelineConfig::builder()
        .k(21)
        .m(6)
        .tasks(2)
        .threads(2)
        .build();
    let res = Pipeline::new(cfg).run_reads(&data.reads).unwrap();
    let parts = partition_reads(&data.reads, &res.labels, res.components.largest_root);

    // Partition is a cover: every read lands on exactly one side.
    assert_eq!(parts.lc.len() + parts.other.len(), data.reads.len());
    assert_eq!(
        parts.lc.num_fragments() + parts.other.num_fragments(),
        data.reads.num_fragments()
    );

    let dir = tmpdir("partition");
    write_partitions(&dir, &parts).unwrap();
    let lc = parse_fastq_path(dir.join("lc.fastq"), true).unwrap();
    let other = parse_fastq_path(dir.join("other.fastq"), true).unwrap();
    assert_eq!(lc.len(), parts.lc.len());
    assert_eq!(other.len(), parts.other.len());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pipeline_is_deterministic() {
    let data = small_community();
    let cfg = PipelineConfig::builder()
        .k(21)
        .m(6)
        .tasks(3)
        .threads(2)
        .passes(2)
        .build();
    let a = Pipeline::new(cfg.clone()).run_reads(&data.reads).unwrap();
    let b = Pipeline::new(cfg).run_reads(&data.reads).unwrap();
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.tuples_total, b.tuples_total);
}

#[test]
fn task_count_does_not_change_components() {
    let data = small_community();
    let mut reference: Option<usize> = None;
    for tasks in [1usize, 2, 5, 8] {
        let cfg = PipelineConfig::builder().k(21).m(6).tasks(tasks).build();
        let res = Pipeline::new(cfg).run_reads(&data.reads).unwrap();
        let c = res.components.components;
        match reference {
            None => reference = Some(c),
            Some(want) => assert_eq!(c, want, "tasks={tasks}"),
        }
    }
}

#[test]
fn filter_never_increases_connectivity() {
    let data = small_community();
    let run = |kf: Option<(u32, u32)>| {
        let mut b = PipelineConfig::builder().k(21).m(6).tasks(2);
        if let Some((lo, hi)) = kf {
            b = b.kf_filter(lo, hi);
        }
        Pipeline::new(b.build()).run_reads(&data.reads).unwrap()
    };
    let unfiltered = run(None);
    let filtered = run(Some((2, 20)));
    // Filtering only removes edges: components can only multiply and the
    // largest can only shrink.
    assert!(filtered.components.components >= unfiltered.components.components);
    assert!(filtered.components.largest <= unfiltered.components.largest);
}

#[test]
fn mates_always_share_a_component() {
    // Both mates carry one fragment id, so the output labeling cannot
    // split a pair by construction; verify the invariant through the API.
    let data = small_community();
    let cfg = PipelineConfig::builder().k(21).m(6).tasks(2).build();
    let res = Pipeline::new(cfg).run_reads(&data.reads).unwrap();
    assert_eq!(res.labels.len(), data.reads.num_fragments() as usize);
    for i in 0..data.reads.len() {
        let f = data.reads.frag_id(i);
        assert!((f as usize) < res.labels.len());
    }
}

#[test]
fn unpaired_reads_work_too() {
    let mut store = ReadStore::new();
    let data = small_community();
    for (seq, _) in data.reads.iter().take(300) {
        store.push_single(seq);
    }
    let cfg = PipelineConfig::builder().k(21).m(6).tasks(2).build();
    let res = Pipeline::new(cfg).run_reads(&store).unwrap();
    assert_eq!(res.labels.len(), 300);
}
