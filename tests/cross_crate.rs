//! Cross-crate consistency: independent implementations must agree on
//! shared quantities (k-mer totals, component partitions, filter effects).

use metaprep::cc::{shiloach_vishkin, ComponentStats};
use metaprep::core::{partition_reads, Pipeline, PipelineConfig};
use metaprep::index::MerHist;
use metaprep::kmc::{count_kmers, KmcConfig};
use metaprep::kmer::{for_each_canonical_kmer, Kmer64};
use metaprep::synth::{simulate_community, CommunityProfile};
use std::collections::HashMap;

fn community() -> metaprep::io::ReadStore {
    let mut p = CommunityProfile::quickstart();
    p.read_pairs = 800;
    simulate_community(&p, 77).reads
}

#[test]
fn kmc_total_equals_merhist_total_equals_pipeline_tuples() {
    let reads = community();
    let k = 21;

    let kmc = count_kmers(
        &reads,
        KmcConfig {
            k,
            minimizer_len: 7,
            bins: 64,
        },
    );
    let mh = MerHist::build(&reads, k, 6);
    let cfg = PipelineConfig::builder().k(k).m(6).tasks(2).build();
    let res = Pipeline::new(cfg).run_reads(&reads).unwrap();

    // Three independent counting paths, one answer.
    assert_eq!(kmc.total_kmers, mh.total());
    assert_eq!(res.tuples_total, mh.total());
}

#[test]
fn pipeline_partition_agrees_with_shiloach_vishkin() {
    let reads = community();
    let k = 21;

    let cfg = PipelineConfig::builder()
        .k(k)
        .m(6)
        .tasks(4)
        .passes(2)
        .build();
    let res = Pipeline::new(cfg).run_reads(&reads).unwrap();

    // Build the explicit read graph and label it with SV.
    let mut groups: HashMap<u64, Vec<u32>> = HashMap::new();
    for (seq, frag) in reads.iter() {
        for_each_canonical_kmer::<Kmer64>(seq, k, |v, _| {
            groups.entry(v).or_default().push(frag);
        });
    }
    let mut edges = Vec::new();
    for (_, rs) in groups {
        for w in rs.windows(2) {
            edges.push((w[0], w[1]));
        }
    }
    let sv = shiloach_vishkin(reads.num_fragments() as usize, &edges);

    let a = ComponentStats::from_component_array(&res.labels);
    let b = ComponentStats::from_component_array(&sv.labels);
    assert_eq!(a.components, b.components);
    assert_eq!(a.sizes_desc, b.sizes_desc);
}

#[test]
fn kf_filter_groups_match_kmc_spectrum() {
    let reads = community();
    let k = 21;
    let (lo, hi) = (2u32, 5u32);

    // Pipeline counts of kept/filtered groups...
    let cfg = PipelineConfig::builder()
        .k(k)
        .m(6)
        .tasks(2)
        .kf_filter(lo, hi)
        .build();
    let res = Pipeline::new(cfg).run_reads(&reads).unwrap();

    // ...must match the spectrum from the independent counter.
    let kmc = count_kmers(
        &reads,
        KmcConfig {
            k,
            minimizer_len: 7,
            bins: 64,
        },
    );
    let distinct = kmc.distinct_kmers;
    let outside: u64 = kmc
        .counts_per_bin
        .iter()
        .flatten()
        .filter(|&&(_, c)| c < lo || c > hi)
        .count() as u64;

    assert_eq!(res.localcc.groups, distinct);
    assert_eq!(res.localcc.filtered_groups, outside);
}

#[test]
fn assembling_partitions_covers_assembling_everything() {
    use metaprep::assembly::{assemble, AssemblyConfig};
    let reads = community();

    let cfg = PipelineConfig::builder().k(21).m(6).tasks(2).build();
    let res = Pipeline::new(cfg).run_reads(&reads).unwrap();
    let parts = partition_reads(&reads, &res.labels, res.components.largest_root);

    let acfg = AssemblyConfig {
        k: 15,
        min_count: 1,
        max_count: u32::MAX,
        min_contig_len: 50,
    };
    let full = assemble(&reads, acfg);
    let lc = assemble(&parts.lc, acfg);
    let other = assemble(&parts.other, acfg);

    // Partitions are k-mer-disjoint at the pipeline k; at the assembler's
    // smaller k they may share a little, so compare loosely: partitioned
    // assembly recovers at least 90% of the full assembly's bases.
    let part_bases = lc.stats.total_bases + other.stats.total_bases;
    assert!(
        part_bases as f64 >= 0.9 * full.stats.total_bases as f64,
        "partitioned {} vs full {}",
        part_bases,
        full.stats.total_bases
    );
}

#[test]
fn facade_reexports_are_usable() {
    // The doc-quickstart path through the facade compiles and runs.
    let data = simulate_community(&CommunityProfile::quickstart(), 42);
    let cfg = PipelineConfig::builder().k(27).tasks(2).threads(2).build();
    let result = Pipeline::new(cfg).run_reads(&data.reads).unwrap();
    assert!(result.components.largest_fraction() > 0.0);
}
