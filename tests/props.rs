//! Property-based integration tests: the full pipeline against a
//! brute-force read-graph construction on arbitrary read sets.

use metaprep::cc::DisjointSet;
use metaprep::core::{Pipeline, PipelineConfig};
use metaprep::io::ReadStore;
use metaprep::kmer::{for_each_canonical_kmer, Kmer64};
use proptest::prelude::*;
use std::collections::HashMap;

/// Brute-force reference partition.
fn reference(reads: &ReadStore, k: usize, kf: Option<(u32, u32)>) -> Vec<u32> {
    let mut groups: HashMap<u64, Vec<u32>> = HashMap::new();
    for (seq, frag) in reads.iter() {
        for_each_canonical_kmer::<Kmer64>(seq, k, |v, _| {
            groups.entry(v).or_default().push(frag);
        });
    }
    let mut ds = DisjointSet::new(reads.num_fragments() as usize);
    for (_, rs) in groups {
        if let Some((lo, hi)) = kf {
            let f = rs.len() as u32;
            if f < lo || f > hi {
                continue;
            }
        }
        for w in rs.windows(2) {
            ds.union(w[0], w[1]);
        }
    }
    ds.into_component_array()
}

fn same_partition(a: &[u32], b: &[u32]) -> bool {
    let mut fwd = HashMap::new();
    let mut bwd = HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        if *fwd.entry(x).or_insert(y) != y || *bwd.entry(y).or_insert(x) != x {
            return false;
        }
    }
    true
}

/// Arbitrary read sets: a few dozen short reads over ACGTN, some paired.
fn read_store_strategy() -> impl Strategy<Value = ReadStore> {
    proptest::collection::vec(
        (
            proptest::collection::vec(
                proptest::sample::select(vec![b'A', b'C', b'G', b'T', b'N']),
                12..60,
            ),
            proptest::bool::ANY,
        ),
        1..40,
    )
    .prop_map(|reads| {
        let mut store = ReadStore::new();
        let mut pending: Option<Vec<u8>> = None;
        for (seq, pair_flag) in reads {
            if let Some(first) = pending.take() {
                store.push_pair(&first, &seq);
            } else if pair_flag {
                pending = Some(seq);
            } else {
                store.push_single(&seq);
            }
        }
        if let Some(first) = pending {
            store.push_single(&first);
        }
        store
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_pipeline_matches_bruteforce(
        reads in read_store_strategy(),
        tasks in 1usize..4,
        passes in 1usize..4,
        threads in 1usize..3,
    ) {
        let k = 11;
        let cfg = PipelineConfig::builder()
            .k(k)
            .m(4)
            .tasks(tasks)
            .passes(passes)
            .threads(threads)
            .build();
        let res = Pipeline::new(cfg).run_reads(&reads).unwrap();
        let want = reference(&reads, k, None);
        prop_assert!(same_partition(&res.labels, &want));
    }

    #[test]
    fn prop_pipeline_with_filter_matches_bruteforce(
        reads in read_store_strategy(),
        lo in 1u32..4,
        span in 0u32..6,
    ) {
        let k = 11;
        let kf = (lo, lo + span);
        let cfg = PipelineConfig::builder()
            .k(k)
            .m(4)
            .tasks(2)
            .passes(2)
            .kf_filter(kf.0, kf.1)
            .build();
        let res = Pipeline::new(cfg).run_reads(&reads).unwrap();
        let want = reference(&reads, k, Some(kf));
        prop_assert!(same_partition(&res.labels, &want));
    }

    #[test]
    fn prop_labels_are_valid_roots(reads in read_store_strategy()) {
        let cfg = PipelineConfig::builder().k(11).m(4).tasks(2).build();
        let res = Pipeline::new(cfg).run_reads(&reads).unwrap();
        // Compressed labels: every label is a fixed point.
        for &l in &res.labels {
            prop_assert_eq!(res.labels[l as usize], l);
        }
        // Sizes sum to the vertex count.
        let sum: usize = res.components.sizes_desc.iter().sum();
        prop_assert_eq!(sum, res.labels.len());
    }
}
