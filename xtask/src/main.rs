//! `cargo xtask` — repo automation for METAPREP.
//!
//! Subcommands:
//!
//! * `check` — the full static gate: the custom concurrency/safety lint
//!   pass (below), `cargo fmt --check`, and `cargo clippy -D warnings`;
//!   `--miri` / `--tsan` additionally run the gated dynamic checkers
//!   when the toolchain provides them (skipped with a notice otherwise).
//! * `lint` — just the custom lint pass.
//! * `bench-smoke` — builds and runs the `index_create` experiment on a
//!   small synthetic file and validates the emitted
//!   `target/BENCH_index.json`, then runs the `trace_smoke` experiment,
//!   which emits a Chrome `trace_event` run trace
//!   (`target/BENCH_trace.json` + `.jsonl`) and schema-validates it,
//!   then the `sort_throughput`, `kmergen`, `loom_dpor`, `faults` and
//!   `presolve` experiments
//!   (`target/BENCH_sort.json` gated on the fused-LocalSort ratio,
//!   `target/BENCH_kmergen.json` gated on the dispatched-SIMD-vs-scalar
//!   KmerGen ratio when a vector backend is active, `target/BENCH_loom.json`
//!   gated on the DPOR reduction of the 3-task all-to-all model), and
//!   finally `metaprep analyze --strict` over the JSONL run trace
//!   (causal-analysis gate: matched send/recv edges, non-empty critical
//!   path; report saved as `target/BENCH_analysis.txt`); CI
//!   uploads all of them as artifacts so the perf and model-checking
//!   trajectories accumulate per commit.
//! * `bench-diff` — compare the current `target/BENCH_*.json` against a
//!   baseline (`--baseline <dir>` with the same files, or `--ref <git-ref>`
//!   read via `git show`), print a per-metric delta table, and fail any
//!   metric that trips the same absolute gate `bench-smoke` enforces.
//!
//! The custom pass is a line scanner (no rustc plumbing, no external
//! deps) enforcing three policies on workspace sources:
//!
//! 1. **Ordering audit** — `Ordering::Relaxed` / `Ordering::SeqCst`
//!    (and every other explicit ordering) outside the audited `sync`
//!    shim modules must carry a `// ORDERING:` justification within the
//!    three preceding lines. The loom shim explores sequential
//!    consistency only, so ordering choices are exactly the part of the
//!    concurrency story the model checker does NOT cover — they must be
//!    argued in source.
//! 2. **SAFETY audit** — every `unsafe` block/fn/impl needs a
//!    `// SAFETY:` comment within the three preceding lines (or on the
//!    same line).
//! 3. **No silent panics in pipeline code** — `.unwrap()` outside
//!    `#[cfg(test)]` modules in library crates must either become error
//!    handling or carry an `// UNWRAP:` justification. Bench/CLI driver
//!    crates, tests, benches, and examples are exempt.
//! 4. **No bare `.expect(` in pipeline code** — the message names the
//!    invariant, but not why it holds; an `// EXPECT:` comment within
//!    the justification window must argue it (same exemptions as the
//!    unwrap lint).
//!
//! The scanned set covers the workspace crates plus `vendor/loom/src`
//! — the model checker's own scheduler is concurrency-critical code
//! and carries the same ORDERING/SAFETY audit obligations.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// Files whose ordering choices are audited as a unit (the sync shims
/// that concentrate the workspace's atomics behind one reviewed API).
const ORDERING_AUDITED: &[&str] = &[
    "crates/metaprep-cc/src/sync.rs",
    "crates/metaprep-dist/src/sync.rs",
    "crates/metaprep-sort/src/sync.rs",
];

/// Crates whose `src/` counts as pipeline code for the unwrap lint.
/// Driver/harness crates (bench, cli) are deliberately absent.
const PIPELINE_CRATES: &[&str] = &[
    "metaprep-kmer",
    "metaprep-io",
    "metaprep-synth",
    "metaprep-index",
    "metaprep-sort",
    "metaprep-cc",
    "metaprep-dist",
    "metaprep-core",
    "metaprep-kmc",
    "metaprep-assembly",
    "metaprep-norm",
    "metaprep-obs",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("check");
    let flags: Vec<&str> = args.iter().skip(1).map(String::as_str).collect();
    match cmd {
        "lint" => run_lint_pass(),
        "check" => run_check(&flags),
        "bench-smoke" => run_bench_smoke(),
        "bench-diff" => run_bench_diff(&flags),
        "help" | "--help" | "-h" => {
            eprintln!(
                "usage: cargo xtask [check|lint|bench-smoke|bench-diff] \
                 [--miri] [--tsan] [--skip-clippy] [--skip-fmt] \
                 [--baseline <dir>] [--ref <git-ref>]"
            );
            ExitCode::SUCCESS
        }
        other => {
            eprintln!(
                "xtask: unknown command `{other}` \
                 (try `check`, `lint`, `bench-smoke`, or `bench-diff`)"
            );
            ExitCode::FAILURE
        }
    }
}

fn run_check(flags: &[&str]) -> ExitCode {
    let mut failed = false;

    eprintln!("== xtask: custom lint pass ==");
    failed |= run_lint_pass() != ExitCode::SUCCESS;

    if !flags.contains(&"--skip-fmt") {
        eprintln!("== xtask: cargo fmt --check ==");
        failed |= !run_cargo(&["fmt", "--all", "--check"]);
    }

    if !flags.contains(&"--skip-clippy") {
        eprintln!("== xtask: cargo clippy -D warnings ==");
        failed |= !run_cargo(&[
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ]);
    }

    if flags.contains(&"--miri") {
        eprintln!("== xtask: miri (gated) ==");
        if tool_available(&["miri", "--version"]) {
            failed |= !run_cargo(&["miri", "test", "-p", "metaprep-cc", "--lib"]);
        } else {
            eprintln!("xtask: miri unavailable on this toolchain — skipped");
        }
    }

    if flags.contains(&"--tsan") {
        eprintln!("== xtask: thread sanitizer (gated) ==");
        if nightly_available() {
            let status = Command::new("cargo")
                .args(["+nightly", "test", "-p", "metaprep-cc", "--lib"])
                .env("RUSTFLAGS", "-Zsanitizer=thread")
                .status();
            failed |= !matches!(status, Ok(s) if s.success());
        } else {
            eprintln!("xtask: nightly toolchain unavailable — TSan skipped");
        }
    }

    if failed {
        eprintln!("xtask check: FAILED");
        ExitCode::FAILURE
    } else {
        eprintln!("xtask check: ok");
        ExitCode::SUCCESS
    }
}

/// Run the `index_create` experiment on a small synthetic dataset and
/// sanity-check the JSON it writes to `target/BENCH_index.json`.
fn run_bench_smoke() -> ExitCode {
    let root = workspace_root();
    let out = root.join("target").join("BENCH_index.json");
    std::fs::remove_file(&out).ok();

    eprintln!("== xtask: bench smoke (index_create) ==");
    let status = Command::new("cargo")
        .args([
            "run",
            "--release",
            "-p",
            "metaprep-bench",
            "--bin",
            "exp_index_create",
        ])
        .env("METAPREP_SCALE", "0.05")
        .env("METAPREP_BENCH_OUT", &out)
        .status();
    if !matches!(status, Ok(s) if s.success()) {
        eprintln!("xtask bench-smoke: exp_index_create failed");
        return ExitCode::FAILURE;
    }

    let Ok(json) = std::fs::read_to_string(&out) else {
        eprintln!("xtask bench-smoke: {} was not written", out.display());
        return ExitCode::FAILURE;
    };
    for needle in ["\"index_create\"", "\"runs\"", "\"stream-t4\""] {
        if !json.contains(needle) {
            eprintln!("xtask bench-smoke: {} missing {needle}", out.display());
            return ExitCode::FAILURE;
        }
    }
    eprintln!("xtask bench-smoke: ok ({})", out.display());

    // Telemetry export: exp_trace_smoke validates the Chrome trace with
    // the schema checker and asserts the report reproduces the run's
    // timings exactly before writing the files checked here.
    let trace = root.join("target").join("BENCH_trace.json");
    std::fs::remove_file(&trace).ok();
    std::fs::remove_file(trace.with_extension("jsonl")).ok();
    eprintln!("== xtask: bench smoke (trace_smoke) ==");
    let status = Command::new("cargo")
        .args([
            "run",
            "--release",
            "-p",
            "metaprep-bench",
            "--bin",
            "exp_trace_smoke",
        ])
        .env("METAPREP_SCALE", "0.05")
        .env("METAPREP_BENCH_OUT", &trace)
        .status();
    if !matches!(status, Ok(s) if s.success()) {
        eprintln!("xtask bench-smoke: exp_trace_smoke failed");
        return ExitCode::FAILURE;
    }
    let Ok(chrome) = std::fs::read_to_string(&trace) else {
        eprintln!("xtask bench-smoke: {} was not written", trace.display());
        return ExitCode::FAILURE;
    };
    for needle in ["\"traceEvents\"", "\"process_name\"", "\"ph\":\"X\""] {
        if !chrome.contains(needle) {
            eprintln!("xtask bench-smoke: {} missing {needle}", trace.display());
            return ExitCode::FAILURE;
        }
    }
    if !trace.with_extension("jsonl").exists() {
        eprintln!("xtask bench-smoke: JSONL trace was not written");
        return ExitCode::FAILURE;
    }
    eprintln!("xtask bench-smoke: ok ({})", trace.display());

    // Fused LocalSort: the experiment itself asserts the fused result is
    // byte-identical to the reference path and that radix passes were
    // pruned; here we additionally gate on the reported throughput ratio
    // so a fused-path regression fails CI. The acceptance target is
    // >= 1.3x; the gate allows 1.1x of slack for shared-runner noise
    // (observed smoke ratios: 1.4-1.9x).
    let sort = root.join("target").join("BENCH_sort.json");
    std::fs::remove_file(&sort).ok();
    eprintln!("== xtask: bench smoke (sort_throughput) ==");
    let status = Command::new("cargo")
        .args([
            "run",
            "--release",
            "-p",
            "metaprep-bench",
            "--bin",
            "exp_sort_throughput",
        ])
        .env("METAPREP_SCALE", "0.05")
        .env("METAPREP_BENCH_OUT", &sort)
        .status();
    if !matches!(status, Ok(s) if s.success()) {
        eprintln!("xtask bench-smoke: exp_sort_throughput failed");
        return ExitCode::FAILURE;
    }
    let Ok(sjson) = std::fs::read_to_string(&sort) else {
        eprintln!("xtask bench-smoke: {} was not written", sort.display());
        return ExitCode::FAILURE;
    };
    for needle in [
        "\"sort_throughput\"",
        "\"fused\"",
        "\"radix_passes_pruned\"",
    ] {
        if !sjson.contains(needle) {
            eprintln!("xtask bench-smoke: {} missing {needle}", sort.display());
            return ExitCode::FAILURE;
        }
    }
    match json_number(&sjson, "\"fused_over_reference\"") {
        Some(ratio) if ratio >= 1.1 => {}
        Some(ratio) => {
            eprintln!(
                "xtask bench-smoke: fused LocalSort only {ratio:.2}x the reference (need >= 1.1x)"
            );
            return ExitCode::FAILURE;
        }
        None => {
            eprintln!(
                "xtask bench-smoke: fused_over_reference missing from {}",
                sort.display()
            );
            return ExitCode::FAILURE;
        }
    }
    match json_number(&sjson, "\"radix_passes_pruned\"") {
        Some(pruned) if pruned > 0.0 => {}
        _ => {
            eprintln!("xtask bench-smoke: expected radix_passes_pruned > 0 in the fused path");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("xtask bench-smoke: ok ({})", sort.display());

    // KmerGen SIMD lanes: the experiment itself asserts the dispatched
    // enumeration checksum matches the scalar reference every round; the
    // gate here requires the dispatched path >= 1.2x scalar whenever a
    // vector backend resolved (observed smoke ratios: 1.3-1.6x on AVX2).
    // On scalar-only boxes — and in the scalar-forced CI job, which runs
    // with METAPREP_SIMD=scalar — the ratio is 1.0 by construction, so
    // the throughput gate is skipped and only the report shape is checked.
    let kmergen = root.join("target").join("BENCH_kmergen.json");
    std::fs::remove_file(&kmergen).ok();
    eprintln!("== xtask: bench smoke (kmergen) ==");
    let status = Command::new("cargo")
        .args([
            "run",
            "--release",
            "-p",
            "metaprep-bench",
            "--bin",
            "exp_kmergen",
        ])
        .env("METAPREP_SCALE", "0.2")
        .env("METAPREP_BENCH_OUT", &kmergen)
        .status();
    if !matches!(status, Ok(s) if s.success()) {
        eprintln!("xtask bench-smoke: exp_kmergen failed");
        return ExitCode::FAILURE;
    }
    let Ok(kjson) = std::fs::read_to_string(&kmergen) else {
        eprintln!("xtask bench-smoke: {} was not written", kmergen.display());
        return ExitCode::FAILURE;
    };
    for needle in ["\"kmergen\"", "\"backend\"", "\"classify\"", "\"scan\""] {
        if !kjson.contains(needle) {
            eprintln!("xtask bench-smoke: {} missing {needle}", kmergen.display());
            return ExitCode::FAILURE;
        }
    }
    let scalar_only = kjson.contains("\"backend\": \"scalar\"");
    match json_number(&kjson, "\"dispatched_over_scalar\"") {
        Some(_) if scalar_only => {
            eprintln!("xtask bench-smoke: scalar backend active, speedup gate skipped");
        }
        Some(ratio) if ratio >= 1.2 => {}
        Some(ratio) => {
            eprintln!(
                "xtask bench-smoke: dispatched KmerGen only {ratio:.2}x scalar (need >= 1.2x)"
            );
            return ExitCode::FAILURE;
        }
        None => {
            eprintln!(
                "xtask bench-smoke: dispatched_over_scalar missing from {}",
                kmergen.display()
            );
            return ExitCode::FAILURE;
        }
    }
    eprintln!("xtask bench-smoke: ok ({})", kmergen.display());

    // Loom DPOR exploration cost: the experiment runs the channel-matrix
    // models under DPOR (and small brute-force references), asserts the
    // 3-task round stays >= 100x reduced, and reports explored/pruned
    // schedule counts; the gate here re-checks the bound from the JSON
    // so a regression fails even if the binary's assert is edited away.
    let loom = root.join("target").join("BENCH_loom.json");
    std::fs::remove_file(&loom).ok();
    eprintln!("== xtask: bench smoke (loom_dpor) ==");
    let status = Command::new("cargo")
        .args([
            "run",
            "--release",
            "-p",
            "metaprep-bench",
            "--bin",
            "exp_loom_dpor",
        ])
        .env("METAPREP_BENCH_OUT", &loom)
        .status();
    if !matches!(status, Ok(s) if s.success()) {
        eprintln!("xtask bench-smoke: exp_loom_dpor failed");
        return ExitCode::FAILURE;
    }
    let Ok(ljson) = std::fs::read_to_string(&loom) else {
        eprintln!("xtask bench-smoke: {} was not written", loom.display());
        return ExitCode::FAILURE;
    };
    for needle in ["\"loom_dpor\"", "\"models\"", "\"schedules_explored\""] {
        if !ljson.contains(needle) {
            eprintln!("xtask bench-smoke: {} missing {needle}", loom.display());
            return ExitCode::FAILURE;
        }
    }
    match json_number(&ljson, "\"alltoall3_explored\"") {
        Some(explored) if explored <= 33_500.0 => {}
        Some(explored) => {
            eprintln!(
                "xtask bench-smoke: DPOR explored {explored} schedules on the 3-task \
                 round (gate: <= 33500, i.e. >= 100x reduction vs ~3.35M brute-force)"
            );
            return ExitCode::FAILURE;
        }
        None => {
            eprintln!(
                "xtask bench-smoke: alltoall3_explored missing from {}",
                loom.display()
            );
            return ExitCode::FAILURE;
        }
    }
    eprintln!("xtask bench-smoke: ok ({})", loom.display());

    // Chaos differential: the experiment partitions a fault-free
    // baseline, replays it under generated fault plans (message faults
    // and mid-run crashes restored from checkpoints), and asserts
    // byte-identical labels itself; the gates here re-check identity and
    // recovery activity from the JSON so a regression fails even if the
    // binary's asserts are edited away.
    let faults = root.join("target").join("BENCH_faults.json");
    std::fs::remove_file(&faults).ok();
    eprintln!("== xtask: bench smoke (faults) ==");
    let status = Command::new("cargo")
        .args([
            "run",
            "--release",
            "-p",
            "metaprep-bench",
            "--bin",
            "exp_faults",
        ])
        .env("METAPREP_SCALE", "0.05")
        .env("METAPREP_BENCH_OUT", &faults)
        .status();
    if !matches!(status, Ok(s) if s.success()) {
        eprintln!("xtask bench-smoke: exp_faults failed");
        return ExitCode::FAILURE;
    }
    let Ok(fjson) = std::fs::read_to_string(&faults) else {
        eprintln!("xtask bench-smoke: {} was not written", faults.display());
        return ExitCode::FAILURE;
    };
    for needle in ["\"faults\"", "\"runs\"", "\"crash-replay-s42\""] {
        if !fjson.contains(needle) {
            eprintln!("xtask bench-smoke: {} missing {needle}", faults.display());
            return ExitCode::FAILURE;
        }
    }
    let identical = json_number(&fjson, "\"runs_identical\"");
    let total = json_number(&fjson, "\"runs_total\"");
    match (identical, total) {
        (Some(i), Some(t)) if i == t && t >= 3.0 => {}
        (Some(i), Some(t)) => {
            eprintln!(
                "xtask bench-smoke: only {i}/{t} faulted runs reproduced the \
                 fault-free labels (need all of >= 3 plans byte-identical)"
            );
            return ExitCode::FAILURE;
        }
        _ => {
            eprintln!(
                "xtask bench-smoke: runs_identical/runs_total missing from {}",
                faults.display()
            );
            return ExitCode::FAILURE;
        }
    }
    match json_number(&fjson, "\"task_restarts_total\"") {
        Some(restarts) if restarts >= 2.0 => {}
        _ => {
            eprintln!(
                "xtask bench-smoke: crash plan restarted < 2 tasks — the \
                 checkpoint/restart path did not run"
            );
            return ExitCode::FAILURE;
        }
    }
    eprintln!("xtask bench-smoke: ok ({})", faults.display());

    // Probabilistic presolve: the experiment picks a threshold from
    // exact k-mer counts, runs baseline vs presolve with identical
    // geometry, and asserts conservation + reductions itself; the gates
    // here re-check the reported reductions from the JSON — the tier
    // must cut the deterministic peak (max packed tuple bytes resident
    // on any task in any pass) by >= 20% and measurably shrink tuple
    // volume, or the claim in DESIGN.md §11 has regressed.
    let presolve = root.join("target").join("BENCH_presolve.json");
    std::fs::remove_file(&presolve).ok();
    eprintln!("== xtask: bench smoke (presolve) ==");
    let status = Command::new("cargo")
        .args([
            "run",
            "--release",
            "-p",
            "metaprep-bench",
            "--bin",
            "exp_presolve",
        ])
        .env("METAPREP_SCALE", "0.05")
        .env("METAPREP_BENCH_OUT", &presolve)
        .status();
    if !matches!(status, Ok(s) if s.success()) {
        eprintln!("xtask bench-smoke: exp_presolve failed");
        return ExitCode::FAILURE;
    }
    let Ok(pjson) = std::fs::read_to_string(&presolve) else {
        eprintln!("xtask bench-smoke: {} was not written", presolve.display());
        return ExitCode::FAILURE;
    };
    for needle in ["\"presolve\"", "\"threshold\"", "\"budget-planned\""] {
        if !pjson.contains(needle) {
            eprintln!("xtask bench-smoke: {} missing {needle}", presolve.display());
            return ExitCode::FAILURE;
        }
    }
    match json_number(&pjson, "\"peak_reduction_pct\"") {
        Some(pctg) if pctg >= 20.0 => {}
        Some(pctg) => {
            eprintln!(
                "xtask bench-smoke: presolve cut peak tuple bytes only {pctg:.1}% (need >= 20%)"
            );
            return ExitCode::FAILURE;
        }
        None => {
            eprintln!(
                "xtask bench-smoke: peak_reduction_pct missing from {}",
                presolve.display()
            );
            return ExitCode::FAILURE;
        }
    }
    match json_number(&pjson, "\"tuple_reduction_pct\"") {
        Some(pctg) if pctg > 0.0 => {}
        _ => {
            eprintln!(
                "xtask bench-smoke: presolve did not shrink tuple volume \
                 (tuple_reduction_pct must be > 0)"
            );
            return ExitCode::FAILURE;
        }
    }
    eprintln!("xtask bench-smoke: ok ({})", presolve.display());

    // Causal trace analysis: `metaprep analyze` must digest the JSONL
    // trace the smoke just wrote — schema problems, unmatched edges, or
    // an empty critical path all exit non-zero under --strict. The text
    // report lands in target/BENCH_analysis.txt for the CI artifact.
    let jsonl = trace.with_extension("jsonl");
    let analysis_out = root.join("target").join("BENCH_analysis.txt");
    std::fs::remove_file(&analysis_out).ok();
    eprintln!("== xtask: bench smoke (analyze) ==");
    let output = Command::new("cargo")
        .args([
            "run",
            "--release",
            "-p",
            "metaprep-cli",
            "--",
            "analyze",
            "--strict",
            "--trace",
        ])
        .arg(&jsonl)
        .output();
    let Ok(output) = output else {
        eprintln!("xtask bench-smoke: failed to launch metaprep analyze");
        return ExitCode::FAILURE;
    };
    if !output.status.success() {
        eprintln!("xtask bench-smoke: metaprep analyze --strict failed");
        eprintln!("{}", String::from_utf8_lossy(&output.stderr));
        return ExitCode::FAILURE;
    }
    let report = String::from_utf8_lossy(&output.stdout).to_string();
    if !report.contains("critical path") || report.contains("critical path — 0 segment(s)") {
        eprintln!("xtask bench-smoke: analyze report has no critical path");
        return ExitCode::FAILURE;
    }
    if std::fs::write(&analysis_out, &report).is_err() {
        eprintln!(
            "xtask bench-smoke: could not write {}",
            analysis_out.display()
        );
        return ExitCode::FAILURE;
    }
    eprintln!("xtask bench-smoke: ok ({})", analysis_out.display());
    ExitCode::SUCCESS
}

/// One gated metric of a bench artifact, mirroring the absolute gates
/// `bench-smoke` enforces (the diff adds the baseline delta next to them).
struct BenchMetric {
    /// Artifact file name under `target/`.
    artifact: &'static str,
    /// JSON key of the gated number (quoted, as stored).
    key: &'static str,
    /// `true` when larger values are better (speedup ratios).
    higher_is_better: bool,
    /// The absolute gate a current value must stay on the right side of.
    gate: f64,
    /// Substring of the artifact that disables the gate (e.g. the SIMD
    /// speedup gate is meaningless on a scalar-only box).
    gate_waiver: Option<&'static str>,
}

const BENCH_METRICS: &[BenchMetric] = &[
    BenchMetric {
        artifact: "BENCH_sort.json",
        key: "\"fused_over_reference\"",
        higher_is_better: true,
        gate: 1.1,
        gate_waiver: None,
    },
    BenchMetric {
        artifact: "BENCH_sort.json",
        key: "\"radix_passes_pruned\"",
        higher_is_better: true,
        gate: 1.0,
        gate_waiver: None,
    },
    BenchMetric {
        artifact: "BENCH_kmergen.json",
        key: "\"dispatched_over_scalar\"",
        higher_is_better: true,
        gate: 1.2,
        gate_waiver: Some("\"backend\": \"scalar\""),
    },
    BenchMetric {
        artifact: "BENCH_loom.json",
        key: "\"alltoall3_explored\"",
        higher_is_better: false,
        gate: 33_500.0,
        gate_waiver: None,
    },
    BenchMetric {
        artifact: "BENCH_faults.json",
        key: "\"runs_identical\"",
        higher_is_better: true,
        gate: 3.0,
        gate_waiver: None,
    },
    BenchMetric {
        artifact: "BENCH_faults.json",
        key: "\"task_restarts_total\"",
        higher_is_better: true,
        gate: 2.0,
        gate_waiver: None,
    },
    BenchMetric {
        artifact: "BENCH_presolve.json",
        key: "\"peak_reduction_pct\"",
        higher_is_better: true,
        gate: 20.0,
        gate_waiver: None,
    },
    BenchMetric {
        artifact: "BENCH_presolve.json",
        key: "\"tuple_reduction_pct\"",
        higher_is_better: true,
        gate: 0.1,
        gate_waiver: None,
    },
];

/// `cargo xtask bench-diff [--baseline <dir>] [--ref <git-ref>]` —
/// compare the current `target/BENCH_*.json` artifacts against a
/// baseline copy (a directory of the same files, or a git ref that has
/// them committed, read via `git show <ref>:target/<name>`), print a
/// per-metric delta table, and fail when a current value trips the same
/// absolute gate `bench-smoke` enforces. Deltas themselves are
/// informational — shared-runner noise makes them a trend signal, not a
/// pass/fail criterion.
fn run_bench_diff(flags: &[&str]) -> ExitCode {
    let root = workspace_root();
    let mut baseline_dir: Option<PathBuf> = None;
    let mut git_ref: Option<String> = None;
    let mut it = flags.iter();
    while let Some(f) = it.next() {
        match *f {
            "--baseline" => baseline_dir = it.next().map(PathBuf::from),
            "--ref" => git_ref = it.next().map(|s| s.to_string()),
            other => {
                eprintln!("xtask bench-diff: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let baseline_text = |artifact: &str| -> Option<String> {
        if let Some(dir) = &baseline_dir {
            return std::fs::read_to_string(dir.join(artifact)).ok();
        }
        if let Some(r) = &git_ref {
            let out = Command::new("git")
                .args(["show", &format!("{r}:target/{artifact}")])
                .current_dir(&root)
                .output()
                .ok()?;
            if out.status.success() {
                return String::from_utf8(out.stdout).ok();
            }
        }
        None
    };

    let fmt_opt = |v: Option<f64>| match v {
        Some(x) => format!("{x:>10.3}"),
        None => format!("{:>10}", "-"),
    };

    eprintln!(
        "{:<18} {:<26} {:>10} {:>10} {:>9}  {:<8} status",
        "artifact", "metric", "baseline", "current", "delta", "gate"
    );
    let mut failed = false;
    for m in BENCH_METRICS {
        let cur_text = std::fs::read_to_string(root.join("target").join(m.artifact)).ok();
        let cur = cur_text.as_deref().and_then(|t| json_number(t, m.key));
        let base = baseline_text(m.artifact)
            .as_deref()
            .and_then(|t| json_number(t, m.key));
        let waived = match (m.gate_waiver, cur_text.as_deref()) {
            (Some(needle), Some(t)) => t.contains(needle),
            _ => false,
        };
        let delta = match (base, cur) {
            (Some(b), Some(c)) if b != 0.0 => Some((c - b) * 100.0 / b),
            _ => None,
        };
        let gate_str = format!("{}{}", if m.higher_is_better { ">=" } else { "<=" }, m.gate);
        let status = match cur {
            None => {
                failed = true;
                "MISSING (run `cargo xtask bench-smoke` first)"
            }
            Some(_) if waived => "waived",
            Some(c)
                if (m.higher_is_better && c >= m.gate) || (!m.higher_is_better && c <= m.gate) =>
            {
                "ok"
            }
            Some(_) => {
                failed = true;
                "FAIL"
            }
        };
        eprintln!(
            "{:<18} {:<26} {} {} {:>8}  {:<8} {status}",
            m.artifact,
            m.key.trim_matches('"'),
            fmt_opt(base),
            fmt_opt(cur),
            delta
                .map(|d| format!("{d:+.1}%"))
                .unwrap_or_else(|| "-".to_string()),
            gate_str,
        );
    }
    if baseline_dir.is_none() && git_ref.is_none() {
        eprintln!("xtask bench-diff: no --baseline/--ref given — gates checked, deltas skipped");
    }
    if failed {
        eprintln!("xtask bench-diff: FAILED");
        ExitCode::FAILURE
    } else {
        eprintln!("xtask bench-diff: ok");
        ExitCode::SUCCESS
    }
}

/// Extract the first numeric value following `key` in a flat JSON string
/// (good enough for the hand-rolled bench reports checked here).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start_matches([':', ' ']);
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn run_cargo(args: &[&str]) -> bool {
    matches!(Command::new("cargo").args(args).status(), Ok(s) if s.success())
}

fn tool_available(args: &[&str]) -> bool {
    matches!(
        Command::new("cargo")
            .args(args)
            .output(),
        Ok(o) if o.status.success()
    )
}

fn nightly_available() -> bool {
    matches!(
        Command::new("cargo").args(["+nightly", "-V"]).output(),
        Ok(o) if o.status.success()
    )
}

// ---------------------------------------------------------------------------
// Custom lint pass
// ---------------------------------------------------------------------------

struct Finding {
    file: PathBuf,
    line: usize,
    lint: &'static str,
    message: String,
}

fn run_lint_pass() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    collect_rs_files(&root.join("src"), &mut files);
    collect_rs_files(&root.join("tests"), &mut files);
    collect_rs_files(&root.join("examples"), &mut files);
    // The vendored model checker is itself concurrency-critical: its
    // scheduler and sync shims carry the same audit obligations as the
    // pipeline's (orderings argued in source, unsafe justified).
    collect_rs_files(&root.join("vendor").join("loom").join("src"), &mut files);
    files.sort();

    let mut findings = Vec::new();
    for file in &files {
        let rel = file.strip_prefix(&root).unwrap_or(file);
        let Ok(text) = std::fs::read_to_string(file) else {
            continue;
        };
        lint_file(rel, &text, &mut findings);
    }

    if findings.is_empty() {
        eprintln!("xtask lint: {} files clean", files.len());
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        eprintln!(
            "{}:{}: [{}] {}",
            f.file.display(),
            f.line,
            f.lint,
            f.message
        );
    }
    eprintln!("xtask lint: {} finding(s)", findings.len());
    ExitCode::FAILURE
}

fn workspace_root() -> PathBuf {
    // xtask is always invoked via `cargo xtask`, so the manifest dir of
    // this crate is `<root>/xtask`.
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .expect("CARGO_MANIFEST_DIR set by cargo for `cargo xtask`");
    Path::new(&manifest)
        .parent()
        .expect("xtask crate lives one level under the workspace root")
        .to_path_buf()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn path_str(rel: &Path) -> String {
    rel.to_string_lossy().replace('\\', "/")
}

fn is_pipeline_src(rel: &str) -> bool {
    PIPELINE_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")))
        || rel == "src/lib.rs"
}

/// True for files where `.unwrap()` is acceptable wholesale: tests,
/// benches, examples, and non-pipeline crates.
fn unwrap_exempt_file(rel: &str) -> bool {
    !is_pipeline_src(rel)
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
}

fn lint_file(rel: &Path, text: &str, findings: &mut Vec<Finding>) {
    let rel_s = path_str(rel);
    let ordering_audited = ORDERING_AUDITED.contains(&rel_s.as_str());
    let unwrap_exempt = unwrap_exempt_file(&rel_s);

    let lines: Vec<&str> = text.lines().collect();
    // Depth of the brace-nesting at which a `#[cfg(test)]` item started;
    // while inside it, the unwrap lint is off.
    let mut depth: i64 = 0;
    let mut test_block_depth: Option<i64> = None;
    let mut pending_cfg_test = false;

    for (idx, raw) in lines.iter().enumerate() {
        let line_no = idx + 1;
        let code = strip_line_comment(raw);
        let trimmed = code.trim();

        // --- cfg(test) tracking (before brace counting so the item's
        // own opening brace marks the region start) ---
        if trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("#[cfg(all(test") {
            pending_cfg_test = true;
        } else if pending_cfg_test
            && !trimmed.is_empty()
            && !trimmed.starts_with("#[")
            && test_block_depth.is_none()
        {
            test_block_depth = Some(depth);
            pending_cfg_test = false;
        }

        let (opens, closes) = count_braces(code);
        depth += opens as i64;
        depth -= closes as i64;
        if let Some(d) = test_block_depth {
            if depth <= d && closes > 0 {
                test_block_depth = None;
            }
        }
        let in_test_code = test_block_depth.is_some();

        // --- lint 1: ordering audit ---
        if !ordering_audited && code.contains("Ordering::") && !in_test_code {
            let has_justification = justified(&lines, idx, "// ORDERING:");
            if !has_justification {
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line: line_no,
                    lint: "ordering-audit",
                    message: "explicit memory ordering outside an audited sync shim \
                              needs a `// ORDERING:` justification within 3 lines"
                        .to_string(),
                });
            }
        }

        // --- lint 2: SAFETY audit ---
        if mentions_unsafe(code) {
            let has_justification = justified(&lines, idx, "// SAFETY:");
            if !has_justification {
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line: line_no,
                    lint: "safety-comment",
                    message: "`unsafe` without a `// SAFETY:` comment within 3 lines".to_string(),
                });
            }
        }

        // --- lint 3: no bare unwrap in pipeline code ---
        if !unwrap_exempt && !in_test_code && code.contains(".unwrap()") {
            let has_justification = justified(&lines, idx, "// UNWRAP:");
            if !has_justification {
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line: line_no,
                    lint: "no-bare-unwrap",
                    message: "`.unwrap()` in pipeline code: handle the error or \
                              justify with `// UNWRAP:`"
                        .to_string(),
                });
            }
        }

        // --- lint 4: no bare expect in pipeline code ---
        // `.expect("…")` names the invariant but not why it holds; the
        // `// EXPECT:` comment must argue the latter.
        if !unwrap_exempt && !in_test_code && code.contains(".expect(") {
            let has_justification = justified(&lines, idx, "// EXPECT:");
            if !has_justification {
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line: line_no,
                    lint: "no-bare-expect",
                    message: "`.expect(` in pipeline code: handle the error or argue \
                              the invariant with `// EXPECT:`"
                        .to_string(),
                });
            }
        }
    }
}

/// A justification comment counts on the same line, anywhere inside the
/// enclosing multi-line statement, or within the three lines preceding
/// that statement's first line (checking raw lines so the marker may
/// sit inside a comment). Statement start is approximated by walking up
/// past continuation lines — lines whose predecessor does not end in
/// `;`, `{`, or `}` — so an `Ordering::` argument four lines into a
/// `compare_exchange` call is still covered by the comment above the
/// call.
fn justified(lines: &[&str], idx: usize, marker: &str) -> bool {
    let mut start = idx;
    while start > 0 {
        let prev = strip_line_comment(lines[start - 1]);
        let prev = prev.trim();
        if prev.ends_with(';') || prev.ends_with('{') || prev.ends_with('}') {
            break;
        }
        start -= 1;
    }
    // Within the statement (or the 3 lines above its first line) …
    let lo = start.saturating_sub(3);
    if lines[lo..=idx].iter().any(|l| l.contains(marker)) {
        return true;
    }
    // … or anywhere in the contiguous comment block directly above the
    // statement (a long justification may exceed the 3-line window).
    let mut j = start;
    while j > 0 && lines[j - 1].trim_start().starts_with("//") {
        if lines[j - 1].contains(marker) {
            return true;
        }
        j -= 1;
    }
    false
}

/// `unsafe` as a keyword (block, fn, impl, trait), not as a substring of
/// an identifier or inside a string literal (approximate).
fn mentions_unsafe(code: &str) -> bool {
    let mut rest = code;
    while let Some(pos) = rest.find("unsafe") {
        let before_ok = pos == 0
            || !rest[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &rest[pos + "unsafe".len()..];
        let after_ok = !after
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        // Skip doc/string mentions like "unsafe" in quotes: cheap check
        // for an odd number of quotes before the keyword.
        let in_string = rest[..pos].matches('"').count() % 2 == 1;
        if before_ok && after_ok && !in_string {
            return true;
        }
        rest = &rest[pos + "unsafe".len()..];
    }
    false
}

/// Strip a trailing `//` comment, ignoring `//` inside string literals
/// (approximate: counts unescaped quotes).
fn strip_line_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' if i == 0 || bytes[i - 1] != b'\\' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

fn count_braces(code: &str) -> (usize, usize) {
    let mut in_str = false;
    let mut opens = 0;
    let mut closes = 0;
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' if i == 0 || bytes[i - 1] != b'\\' => in_str = !in_str,
            b'{' if !in_str => opens += 1,
            b'}' if !in_str => closes += 1,
            _ => {}
        }
    }
    (opens, closes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(rel: &str, text: &str) -> Vec<String> {
        let mut findings = Vec::new();
        lint_file(Path::new(rel), text, &mut findings);
        findings
            .into_iter()
            .map(|f| format!("{}:{}", f.lint, f.line))
            .collect()
    }

    #[test]
    fn ordering_without_justification_flagged() {
        let hits = lint_str(
            "crates/metaprep-cc/src/x.rs",
            "fn f(a: &AtomicU32) { a.load(Ordering::Relaxed); }\n",
        );
        assert_eq!(hits, vec!["ordering-audit:1"]);
    }

    #[test]
    fn ordering_with_justification_ok() {
        let hits = lint_str(
            "crates/metaprep-cc/src/x.rs",
            "// ORDERING: counter only, no synchronization piggybacks on it.\n\
             fn f(a: &AtomicU32) { a.load(Ordering::Relaxed); }\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn audited_shim_exempt_from_ordering_lint() {
        let hits = lint_str(
            "crates/metaprep-cc/src/sync.rs",
            "fn f(a: &AtomicU32) { a.load(Ordering::Acquire); }\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let hits = lint_str(
            "crates/metaprep-sort/src/x.rs",
            "fn f() { unsafe { danger(); } }\n",
        );
        assert_eq!(hits, vec!["safety-comment:1"]);
        let ok = lint_str(
            "crates/metaprep-sort/src/x.rs",
            "// SAFETY: bounds checked above.\nfn f() { unsafe { danger(); } }\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn unsafe_in_string_or_identifier_not_flagged() {
        let hits = lint_str(
            "crates/metaprep-sort/src/x.rs",
            "fn f() { let not_unsafe_here = 1; let s = \"unsafe\"; }\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn unwrap_flagged_outside_tests_only() {
        let text = "fn f() { g().unwrap(); }\n\
                    #[cfg(test)]\n\
                    mod tests {\n\
                    fn t() { g().unwrap(); }\n\
                    }\n";
        let hits = lint_str("crates/metaprep-io/src/x.rs", text);
        assert_eq!(hits, vec!["no-bare-unwrap:1"]);
    }

    #[test]
    fn unwrap_after_test_module_flagged_again() {
        let text = "#[cfg(test)]\n\
                    mod tests {\n\
                    fn t() { g().unwrap(); }\n\
                    }\n\
                    fn f() { g().unwrap(); }\n";
        let hits = lint_str("crates/metaprep-io/src/x.rs", text);
        assert_eq!(hits, vec!["no-bare-unwrap:5"]);
    }

    #[test]
    fn unwrap_exemptions() {
        let hits = lint_str(
            "crates/metaprep-bench/src/x.rs",
            "fn f() { g().unwrap(); }\n",
        );
        assert!(hits.is_empty(), "bench crate exempt: {hits:?}");
        let hits = lint_str("tests/e2e.rs", "fn f() { g().unwrap(); }\n");
        assert!(hits.is_empty(), "integration tests exempt: {hits:?}");
        let hits = lint_str(
            "crates/metaprep-io/src/x.rs",
            "// UNWRAP: checked non-empty above.\nfn f() { g().unwrap(); }\n",
        );
        assert!(hits.is_empty(), "justified unwrap ok: {hits:?}");
    }

    #[test]
    fn expect_flagged_outside_tests_only() {
        let text = "fn f() { g().expect(\"nonempty\"); }\n\
                    #[cfg(test)]\n\
                    mod tests {\n\
                    fn t() { g().expect(\"nonempty\"); }\n\
                    }\n";
        let hits = lint_str("crates/metaprep-io/src/x.rs", text);
        assert_eq!(hits, vec!["no-bare-expect:1"]);
    }

    #[test]
    fn expect_exemptions() {
        let hits = lint_str(
            "crates/metaprep-bench/src/x.rs",
            "fn f() { g().expect(\"bench\"); }\n",
        );
        assert!(hits.is_empty(), "bench crate exempt: {hits:?}");
        let hits = lint_str("tests/e2e.rs", "fn f() { g().expect(\"test\"); }\n");
        assert!(hits.is_empty(), "integration tests exempt: {hits:?}");
        let hits = lint_str(
            "crates/metaprep-io/src/x.rs",
            "// EXPECT: seeded with one element above, never drained.\n\
             fn f() { g().expect(\"nonempty\"); }\n",
        );
        assert!(hits.is_empty(), "justified expect ok: {hits:?}");
    }

    #[test]
    fn unwrap_justification_does_not_cover_expect() {
        // `// UNWRAP:` and `// EXPECT:` are distinct markers — a line
        // with both calls needs both arguments.
        let text = "// UNWRAP: checked above.\n\
                    fn f() { g().unwrap(); h().expect(\"invariant\"); }\n";
        let hits = lint_str("crates/metaprep-io/src/x.rs", text);
        assert_eq!(hits, vec!["no-bare-expect:2"]);
    }

    #[test]
    fn vendored_loom_audited_for_ordering_and_safety() {
        // vendor/loom/src is in the scanned set with the ordering and
        // safety lints active; the unwrap/expect lints stay pipeline-only.
        let hits = lint_str(
            "vendor/loom/src/x.rs",
            "fn f(a: &AtomicU32) { a.load(Ordering::SeqCst); }\n\
             fn g() { unsafe { danger(); } }\n\
             fn h() { i().unwrap(); j().expect(\"shim\"); }\n",
        );
        assert_eq!(hits, vec!["ordering-audit:1", "safety-comment:2"]);
    }

    #[test]
    fn simd_module_covered_by_safety_lint() {
        // The runtime-dispatched SIMD kernels live in a pipeline crate
        // (`metaprep-kmer`), so their `unsafe` blocks and target-feature
        // fns are NOT exempt: a bare `unsafe` under src/simd/ must flag.
        let hits = lint_str(
            "crates/metaprep-kmer/src/simd/avx2.rs",
            "pub unsafe fn encode_classify(seq: &[u8], out: &mut [u8]) {\n\
             unsafe { core(seq, out) }\n\
             }\n",
        );
        assert_eq!(hits, vec!["safety-comment:1", "safety-comment:2"]);
    }

    #[test]
    fn on_disk_simd_sources_pass_the_lint() {
        // End-to-end pin: the real SIMD sources (the densest unsafe code
        // in the workspace) carry a SAFETY justification on every unsafe
        // block. Scans the actual files so a drive-by `unsafe` without a
        // comment fails here even before `cargo xtask lint` runs.
        let root = workspace_root();
        let simd_dir = root.join("crates/metaprep-kmer/src/simd");
        let mut files = Vec::new();
        collect_rs_files(&simd_dir, &mut files);
        assert!(
            files.len() >= 3,
            "expected the simd module sources under {}",
            simd_dir.display()
        );
        let mut findings = Vec::new();
        for path in &files {
            let text = std::fs::read_to_string(path).expect("read simd source");
            let rel = path.strip_prefix(&root).expect("under workspace root");
            lint_file(rel, &text, &mut findings);
        }
        assert!(
            findings.is_empty(),
            "simd sources must pass the custom lints: {:?}",
            findings
                .iter()
                .map(|f| format!("{}:{}:{}", f.file.display(), f.line, f.lint))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn analysis_module_covered_by_pipeline_lints() {
        // The causal-analysis module lives in `metaprep-obs`, a pipeline
        // crate: its code is subject to the ordering and unwrap/expect
        // gates like any other pipeline source.
        assert!(is_pipeline_src("crates/metaprep-obs/src/analysis.rs"));
        let hits = lint_str(
            "crates/metaprep-obs/src/analysis.rs",
            "fn f() { g().unwrap(); }\n",
        );
        assert_eq!(hits, vec!["no-bare-unwrap:1"]);
    }

    #[test]
    fn on_disk_analysis_source_passes_the_lint() {
        // End-to-end pin, like the SIMD one below: the real analysis
        // source must stay clean under the custom lints.
        let root = workspace_root();
        let path = root.join("crates/metaprep-obs/src/analysis.rs");
        let text = std::fs::read_to_string(&path).expect("read analysis source");
        let mut findings = Vec::new();
        lint_file(
            Path::new("crates/metaprep-obs/src/analysis.rs"),
            &text,
            &mut findings,
        );
        assert!(
            findings.is_empty(),
            "analysis.rs must pass the custom lints: {:?}",
            findings
                .iter()
                .map(|f| format!("{}:{}", f.line, f.lint))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn fault_modules_covered_by_pipeline_lints() {
        // The fault-injection/recovery plane spans `metaprep-dist` and
        // `metaprep-core`, both pipeline crates: every new module is
        // subject to the ordering and unwrap/expect gates automatically.
        for rel in [
            "crates/metaprep-dist/src/faults.rs",
            "crates/metaprep-dist/src/delivery.rs",
            "crates/metaprep-dist/src/supervisor.rs",
            "crates/metaprep-core/src/checkpoint.rs",
        ] {
            assert!(is_pipeline_src(rel), "{rel} must be pipeline source");
            let hits = lint_str(rel, "fn f() { g().unwrap(); }\n");
            assert_eq!(hits, vec!["no-bare-unwrap:1"], "{rel}");
        }
    }

    #[test]
    fn on_disk_fault_sources_pass_the_lint() {
        // End-to-end pin, like the analysis one above: the real
        // fault-plane sources must stay clean under the custom lints.
        let root = workspace_root();
        for rel in [
            "crates/metaprep-dist/src/faults.rs",
            "crates/metaprep-dist/src/delivery.rs",
            "crates/metaprep-dist/src/supervisor.rs",
            "crates/metaprep-core/src/checkpoint.rs",
        ] {
            let text = std::fs::read_to_string(root.join(rel)).expect("read fault-plane source");
            let mut findings = Vec::new();
            lint_file(Path::new(rel), &text, &mut findings);
            assert!(
                findings.is_empty(),
                "{rel} must pass the custom lints: {:?}",
                findings
                    .iter()
                    .map(|f| format!("{}:{}", f.line, f.lint))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn presolve_modules_covered_by_pipeline_lints() {
        // The probabilistic presolve tier spans `metaprep-norm` (the
        // count-min sketch), `metaprep-index` (the sketched streaming
        // scan) and `metaprep-core` (the adaptive pass planner) — all
        // pipeline crates, so the ordering and unwrap/expect gates apply.
        for rel in [
            "crates/metaprep-norm/src/countmin.rs",
            "crates/metaprep-index/src/streaming.rs",
            "crates/metaprep-core/src/planner.rs",
        ] {
            assert!(is_pipeline_src(rel), "{rel} must be pipeline source");
            let hits = lint_str(rel, "fn f() { g().unwrap(); }\n");
            assert_eq!(hits, vec!["no-bare-unwrap:1"], "{rel}");
        }
    }

    #[test]
    fn on_disk_presolve_sources_pass_the_lint() {
        // End-to-end pin, like the fault-plane one above: the real
        // presolve/planner sources must stay clean under the custom lints.
        let root = workspace_root();
        for rel in [
            "crates/metaprep-norm/src/countmin.rs",
            "crates/metaprep-index/src/streaming.rs",
            "crates/metaprep-core/src/planner.rs",
        ] {
            let text = std::fs::read_to_string(root.join(rel)).expect("read presolve source");
            let mut findings = Vec::new();
            lint_file(Path::new(rel), &text, &mut findings);
            assert!(
                findings.is_empty(),
                "{rel} must pass the custom lints: {:?}",
                findings
                    .iter()
                    .map(|f| format!("{}:{}", f.line, f.lint))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn justification_covers_multiline_statement() {
        let text = "// ORDERING: AcqRel publishes; Relaxed failure is re-verified.\n\
                    fn f(a: &AtomicU32) {\n\
                    let _ = a.compare_exchange(\n\
                    0,\n\
                    1,\n\
                    Ordering::AcqRel,\n\
                    Ordering::Relaxed,\n\
                    );\n\
                    }\n";
        let hits = lint_str("crates/metaprep-cc/src/x.rs", text);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn comment_only_mentions_not_flagged() {
        let hits = lint_str(
            "crates/metaprep-io/src/x.rs",
            "// talking about .unwrap() and Ordering::Relaxed in prose\nfn f() {}\n",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }
}
